package load

import (
	"testing"
	"time"

	"iokast/internal/xrand"
)

// TestHistogramBuckets pins the exposition contract: per-bucket counts
// sum to exactly Count(), bounds are strictly monotone, and every
// recorded value is covered by a bucket whose bound is at least as large
// as the value (so a cumulative "le" exposition is always correct).
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	if got := h.Buckets(); got != nil {
		t.Fatalf("Buckets on empty histogram = %v, want nil", got)
	}

	rng := xrand.New(7)
	var maxMicros int64
	for i := 0; i < 10000; i++ {
		// Spread across many octaves: sub-µs to minutes.
		u := int64(rng.Uint64() % (1 << (rng.Uint64() % 36)))
		if u > maxMicros {
			maxMicros = u
		}
		h.Record(time.Duration(u) * time.Microsecond)
	}
	// Hit the clamped top bucket too.
	h.Record(100 * time.Hour)

	bs := h.Buckets()
	if len(bs) == 0 {
		t.Fatal("Buckets returned none after recording")
	}
	var total int64
	prev := int64(-1)
	for i, b := range bs {
		if b.Count <= 0 {
			t.Fatalf("bucket %d has non-positive count %d", i, b.Count)
		}
		if b.UpperMicros <= prev {
			t.Fatalf("bucket bounds not monotone: bucket %d bound %d after %d", i, b.UpperMicros, prev)
		}
		prev = b.UpperMicros
		total += b.Count
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, want Count() = %d", total, h.Count())
	}
	// Every value except top-bucket clamps is below the last bound;
	// maxMicros was recorded, so the final bound must reach it.
	if last := bs[len(bs)-1].UpperMicros; last <= maxMicros && h.Max() < 100*time.Hour {
		t.Fatalf("last bound %dµs does not cover max recorded %dµs", last, maxMicros)
	}
}

// TestHistogramSum pins that Sum is exact (no bucket quantization) and
// consistent with Mean.
func TestHistogramSum(t *testing.T) {
	var h Histogram
	if h.Sum() != 0 {
		t.Fatalf("Sum on empty histogram = %v", h.Sum())
	}
	vals := []time.Duration{3 * time.Microsecond, 900 * time.Microsecond, 17 * time.Millisecond}
	var want time.Duration
	for _, v := range vals {
		h.Record(v)
		want += v
	}
	if h.Sum() != want {
		t.Fatalf("Sum = %v, want %v", h.Sum(), want)
	}
	// Mean truncates to whole microseconds (sum is kept in µs).
	wantMean := time.Duration(want.Microseconds()/int64(len(vals))) * time.Microsecond
	if mean := h.Mean(); mean != wantMean {
		t.Fatalf("Mean = %v, want %v", mean, wantMean)
	}
}
