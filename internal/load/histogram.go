package load

import "iokast/internal/hdr"

// Histogram is the bounded log-linear latency histogram the Runner
// records into. The implementation lives in internal/hdr so the
// server-side /metrics exposition (internal/obs) shares the exact
// bucket geometry; the alias keeps this package's API unchanged.
type Histogram = hdr.Histogram

// Bucket is one non-empty histogram bucket, as yielded by
// Histogram.Buckets.
type Bucket = hdr.Bucket
