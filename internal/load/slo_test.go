package load

import (
	"strings"
	"testing"
)

// TestParseSLO is the table-driven grammar pin: every documented form
// parses to the expected gates, and malformed specs are rejected with a
// diagnostic, never silently dropped or defaulted.
func TestParseSLO(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []Gate
	}{
		{"/classify:p99<5ms,err<0.1%", []Gate{
			{Selector: "/classify", Metric: "p99", Cmp: "<", Bound: 5},
			{Selector: "/classify", Metric: "err", Cmp: "<", Bound: 0.001},
		}},
		{"*:p99<50ms,err=0", []Gate{
			{Selector: "*", Metric: "p99", Cmp: "<", Bound: 50},
			{Selector: "*", Metric: "err", Cmp: "=", Bound: 0},
		}},
		{"p95<250us", []Gate{ // no selector = "*"
			{Selector: "*", Metric: "p95", Cmp: "<", Bound: 0.25},
		}},
		{"GET /similar:p95<2ms;/traces:p99<=10ms", []Gate{
			{Selector: "GET /similar", Metric: "p95", Cmp: "<", Bound: 2},
			{Selector: "/traces", Metric: "p99", Cmp: "<=", Bound: 10},
		}},
		{"p99.9<1s", []Gate{
			{Selector: "*", Metric: "p999", Cmp: "<", Bound: 1000},
		}},
		{"err<=5%", []Gate{
			{Selector: "*", Metric: "err", Cmp: "<=", Bound: 0.05},
		}},
		{"p50<1.5ms", []Gate{
			{Selector: "*", Metric: "p50", Cmp: "<", Bound: 1.5},
		}},
	} {
		got, err := ParseSLO(tc.in)
		if err != nil {
			t.Errorf("ParseSLO(%q): %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseSLO(%q) = %d gates, want %d: %+v", tc.in, len(got), len(tc.want), got)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseSLO(%q)[%d] = %+v, want %+v", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestParseSLOMalformed(t *testing.T) {
	for _, tc := range []struct {
		in, wantErr string
	}{
		{"", "empty SLO"},
		{";;", "empty SLO"},
		{"/classify:", "no assertions"},
		{"/classify:p99", "no comparator"},
		{"/classify:p42<5ms", "unknown SLO metric"},
		{"/classify:p99<fast", "bad latency bound"},
		{"/classify:p99<-5ms", "bad latency bound"},
		{"/classify:p99=5ms", "'=' only applies to err"},
		{"/classify:err<bogus%", "bad error bound"},
		{"/classify:err<-1%", "bad error bound"},
		{"/classify:err<150%", "exceeds 100%"},
		{":p99<5ms", "empty SLO selector"},
	} {
		_, err := ParseSLO(tc.in)
		if err == nil {
			t.Errorf("ParseSLO(%q): accepted", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseSLO(%q) error %q does not mention %q", tc.in, err, tc.wantErr)
		}
	}
}

// reportFixture builds a report with two endpoints at known latencies
// and error rates for evaluation tests.
func reportFixture() *Report {
	return &Report{
		Endpoints: map[string]EndpointReport{
			"POST /classify": {Requests: 1000, P50Ms: 1, P95Ms: 3, P99Ms: 4, P999Ms: 8, ErrorRate: 0},
			"GET /similar":   {Requests: 2000, P50Ms: 0.5, P95Ms: 1, P99Ms: 2, P999Ms: 3, ErrorRate: 0.002},
			"POST /similar":  {Requests: 500, P50Ms: 2, P95Ms: 6, P99Ms: 9, P999Ms: 12, ErrorRate: 0},
		},
	}
}

func TestEvaluateGates(t *testing.T) {
	for _, tc := range []struct {
		slo  string
		pass bool
	}{
		{"/classify:p99<5ms", true},
		{"/classify:p99<4ms", false}, // strict: 4 < 4 fails
		{"/classify:p99<=4ms", true},
		{"/classify:err=0", true},
		{"*:p99<10ms", true},
		{"*:p99<9ms", false},        // POST /similar at exactly 9
		{"*:err=0", false},          // GET /similar has errors
		{"*:err<0.5%", true},        // 0.002 < 0.005
		{"/similar:p95<7ms", true},  // covers GET and POST forms
		{"/similar:p95<5ms", false}, // POST /similar p95=6
		{"GET /similar:p95<2ms", true},
		{"/nope:p99<5ms", false}, // no matching traffic must fail
	} {
		gates, err := ParseSLO(tc.slo)
		if err != nil {
			t.Fatalf("ParseSLO(%q): %v", tc.slo, err)
		}
		rep := reportFixture()
		if got := Evaluate(gates, rep); got != tc.pass {
			t.Errorf("Evaluate(%q) = %v, want %v (results %+v)", tc.slo, got, tc.pass, rep.SLO)
		}
		if len(rep.SLO) != len(gates) {
			t.Errorf("Evaluate(%q): %d results for %d gates", tc.slo, len(rep.SLO), len(gates))
		}
		for _, g := range rep.SLO {
			if g.Detail == "" {
				t.Errorf("Evaluate(%q): gate %q has no detail", tc.slo, g.Gate)
			}
		}
	}
}

// TestEvaluateSkipsIdleEndpoints: an endpoint with zero requests (the
// mix didn't include it) neither passes nor fails a wildcard gate.
func TestEvaluateSkipsIdleEndpoints(t *testing.T) {
	rep := reportFixture()
	rep.Endpoints["DELETE /traces/{id}"] = EndpointReport{Requests: 0, P99Ms: 1e9}
	gates, _ := ParseSLO("*:p99<10ms")
	if !Evaluate(gates, rep) {
		t.Fatalf("idle endpoint failed the run: %+v", rep.SLO)
	}
}
