package load

import (
	"fmt"
	"math"
	"time"

	"iokast/internal/xrand"
)

// Arrival produces the inter-arrival gaps of one client's open-loop
// request stream. Implementations are deterministic in the xrand state
// they were built with: the same seed yields the same schedule, which is
// what makes load runs reproducible and diffable.
type Arrival interface {
	// Next returns the gap between the previous request and the next one.
	Next() time.Duration
}

// Period is one phase of a bursty multi-period arrival cycle: for Dur of
// virtual time the base rate is multiplied by RateMult. A cycle like
// {200ms x 4.0, 800ms x 0.25} alternates a 4x burst with a quiet phase
// while keeping the long-run average at the base rate.
type Period struct {
	Dur      Duration `json:"dur"`
	RateMult float64  `json:"rate_mult"`
}

// ArrivalSpec selects and parameterizes an arrival process.
type ArrivalSpec struct {
	// Process is "constant", "poisson", or "gamma".
	Process string `json:"process"`
	// Shape is the Gamma shape parameter k (gamma only). k = 1 is
	// exponential (Poisson process); k < 1 is burstier than Poisson
	// (clumped arrivals with long gaps); k > 1 is more regular. The
	// default is 0.5.
	Shape float64 `json:"shape,omitempty"`
	// Periods is the bursty rate-modulation cycle (gamma only; empty
	// means a flat rate).
	Periods []Period `json:"periods,omitempty"`
}

// Validate checks the spec against rate (requests/second).
func (a ArrivalSpec) Validate(rate float64) error {
	if !(rate > 0) {
		return fmt.Errorf("load: rate must be > 0, got %v", rate)
	}
	switch a.Process {
	case "constant", "poisson":
		if a.Shape != 0 || len(a.Periods) != 0 {
			return fmt.Errorf("load: shape/periods only apply to the gamma process")
		}
	case "gamma":
		if a.Shape < 0 {
			return fmt.Errorf("load: gamma shape must be > 0, got %v", a.Shape)
		}
		for i, p := range a.Periods {
			if p.Dur <= 0 || !(p.RateMult > 0) {
				return fmt.Errorf("load: periods[%d] needs dur > 0 and rate_mult > 0", i)
			}
		}
	default:
		return fmt.Errorf("load: unknown arrival process %q (want constant, poisson, or gamma)", a.Process)
	}
	return nil
}

// NewArrival builds the arrival process for one client. r is consumed by
// the returned process and must not be shared with other draws.
func NewArrival(spec ArrivalSpec, rate float64, r *xrand.Rand) (Arrival, error) {
	if err := spec.Validate(rate); err != nil {
		return nil, err
	}
	switch spec.Process {
	case "constant":
		return &constantArrival{gap: secondsToDuration(1 / rate)}, nil
	case "poisson":
		return &poissonArrival{rate: rate, r: r}, nil
	default: // "gamma", after Validate
		shape := spec.Shape
		if shape == 0 {
			shape = 0.5
		}
		return &gammaArrival{rate: rate, shape: shape, periods: spec.Periods, r: r}, nil
	}
}

// constantArrival fires at a fixed rate: the deterministic baseline that
// makes throughput and queueing effects easiest to reason about.
type constantArrival struct{ gap time.Duration }

func (c *constantArrival) Next() time.Duration { return c.gap }

// poissonArrival draws exponential inter-arrival gaps: the memoryless
// process of many independent clients, the standard load-test default.
type poissonArrival struct {
	rate float64
	r    *xrand.Rand
}

func (p *poissonArrival) Next() time.Duration {
	return secondsToDuration(expSample(p.r) / p.rate)
}

// gammaArrival draws Gamma(shape, scale)-distributed gaps with the scale
// chosen so the mean gap at the base rate is 1/rate. Shape < 1 yields
// bursty, clumped arrivals; shape = 1 recovers the Poisson process. The
// optional period cycle modulates the rate over virtual time (the sum of
// gaps handed out) by inverting the piecewise-constant rate function:
// each drawn gap is an amount of base-rate "arrival mass", consumed
// RateMult times faster inside a burst period — so a gap that spans a
// period boundary is stretched or compressed exactly, and the long-run
// rate equals the base rate times the time-weighted mean multiplier with
// no boundary bias.
type gammaArrival struct {
	rate    float64
	shape   float64
	periods []Period
	r       *xrand.Rand

	idx      int           // current period in the cycle
	inPeriod time.Duration // virtual time spent inside it
}

func (g *gammaArrival) Next() time.Duration {
	base := gammaSample(g.r, g.shape) / (g.rate * g.shape) // seconds at the base rate
	if len(g.periods) == 0 {
		return secondsToDuration(base)
	}
	var gap float64 // virtual seconds
	for {
		p := g.periods[g.idx]
		left := (time.Duration(p.Dur) - g.inPeriod).Seconds()
		need := base / p.RateMult // virtual time to drain the rest at this period's rate
		if need <= left {
			g.inPeriod += secondsToDuration(need)
			return secondsToDuration(gap + need)
		}
		gap += left
		base -= left * p.RateMult
		g.idx = (g.idx + 1) % len(g.periods)
		g.inPeriod = 0
	}
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(math.Round(s * float64(time.Second)))
}

// expSample draws from Exp(1). 1-Float64() is in (0, 1], so the log is
// finite.
func expSample(r *xrand.Rand) float64 {
	return -math.Log(1 - r.Float64())
}

// normSample draws from the standard normal via Box-Muller. The polar
// variant would reject draws, costing determinism nothing but making the
// consumed-stream length data-dependent for no benefit here.
func normSample(r *xrand.Rand) float64 {
	u1 := 1 - r.Float64() // (0, 1]: log stays finite
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// gammaSample draws from Gamma(shape, 1) by Marsaglia-Tsang (ACM TOMS
// 2000) for shape >= 1, boosted with the standard U^(1/shape) factor for
// shape < 1.
func gammaSample(r *xrand.Rand, shape float64) float64 {
	if shape < 1 {
		u := 1 - r.Float64() // (0, 1]
		return gammaSample(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := normSample(r)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
