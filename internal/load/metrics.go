package load

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ParseMetrics reads a Prometheus text exposition into a flat sample map
// keyed by the full series name (including its label set, exactly as
// rendered). It is deliberately strict for a scraper: a line that is
// neither a comment nor `name[{labels}] value` fails the parse, so a
// half-written or garbage exposition is an error, not a silent zero.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space; the series key
		// (name plus rendered labels, which may themselves contain spaces
		// inside quoted values) is everything before it.
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			return nil, fmt.Errorf("load: metrics line %d: no value in %q", lineNo, line)
		}
		key, val := line[:cut], line[cut+1:]
		if strings.ContainsAny(key, "\t") || (strings.ContainsRune(key, '{') != strings.HasSuffix(key, "}")) {
			return nil, fmt.Errorf("load: metrics line %d: malformed series %q", lineNo, key)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("load: metrics line %d: bad value %q", lineNo, val)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("load: metrics line %d: duplicate series %q", lineNo, key)
		}
		out[key] = f
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("load: read metrics: %v", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("load: empty metrics exposition")
	}
	return out, nil
}

// ScrapeMetrics fetches and parses target's /metrics endpoint.
func ScrapeMetrics(ctx context.Context, target string) (map[string]float64, error) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(target, "/")+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("load: scrape metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: scrape metrics: status %d", resp.StatusCode)
	}
	return ParseMetrics(resp.Body)
}

// MetricsDelta subtracts a before-run scrape from an after-run scrape,
// keeping the cumulative series (counters and histogram _sum/_count;
// per-bucket series are dropped as noise at report granularity) that
// moved during the run. This is what lands in Report.ServerMetrics: the
// server's own view of the work the load run caused.
func MetricsDelta(before, after map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for key, v := range after {
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !strings.HasSuffix(name, "_total") &&
			!strings.HasSuffix(name, "_sum") && !strings.HasSuffix(name, "_count") {
			continue
		}
		if d := v - before[key]; d != 0 {
			out[key] = d
		}
	}
	return out
}
