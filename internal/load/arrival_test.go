package load

import (
	"math"
	"testing"
	"time"

	"iokast/internal/xrand"
)

// burstPeriods is the bursty cycle used across the arrival tests: a
// 200ms 4x burst followed by an 800ms quiet quarter-rate phase.
func burstPeriods() []Period {
	return []Period{
		{Dur: Duration(200 * time.Millisecond), RateMult: 4},
		{Dur: Duration(800 * time.Millisecond), RateMult: 0.25},
	}
}

// TestArrivalGolden pins the first 20 inter-arrival gaps of every
// process at rate 100/s, seed 42. These values are the determinism
// contract: if any of them moves, previously recorded load runs are no
// longer reproducible, so changing them is a reviewed decision (and a
// report-format version bump), not a refactor side-effect.
func TestArrivalGolden(t *testing.T) {
	golden := map[string][]int64{
		"constant": {
			10000000, 10000000, 10000000, 10000000, 10000000,
			10000000, 10000000, 10000000, 10000000, 10000000,
			10000000, 10000000, 10000000, 10000000, 10000000,
			10000000, 10000000, 10000000, 10000000, 10000000,
		},
		"poisson": {
			13531106, 1742467, 3265631, 4218853, 387722,
			20266827, 2464188, 16126023, 4154110, 9635974,
			2292897, 6792229, 7203049, 7339969, 10941007,
			2274467, 1093398, 6841848, 980844, 11677899,
		},
		"gamma": {
			352767, 7635489, 3568552, 734009, 10311994,
			7814, 4814507, 27481, 199668, 5388052,
			1188527, 1207106, 129518, 8494760, 1218921,
			180222, 7767429, 260182, 6593853, 2144860,
		},
	}
	for name, want := range golden {
		spec := ArrivalSpec{Process: name}
		if name == "gamma" {
			spec.Shape = 0.5
			spec.Periods = burstPeriods()
		}
		a, err := NewArrival(spec, 100, xrand.New(42))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, w := range want {
			if got := int64(a.Next()); got != w {
				t.Errorf("%s gap[%d] = %d, want %d", name, i, got, w)
			}
		}
	}
}

// TestArrivalDeterminism: the same seed always produces the same gap
// stream, and different seeds diverge.
func TestArrivalDeterminism(t *testing.T) {
	for _, name := range []string{"poisson", "gamma"} {
		spec := ArrivalSpec{Process: name}
		if name == "gamma" {
			spec.Shape = 0.7
		}
		a1, _ := NewArrival(spec, 50, xrand.New(7))
		a2, _ := NewArrival(spec, 50, xrand.New(7))
		a3, _ := NewArrival(spec, 50, xrand.New(8))
		diverged := false
		for i := 0; i < 500; i++ {
			g1, g2, g3 := a1.Next(), a2.Next(), a3.Next()
			if g1 != g2 {
				t.Fatalf("%s: same seed diverged at gap %d: %v vs %v", name, i, g1, g2)
			}
			if g1 != g3 {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("%s: seeds 7 and 8 produced identical 500-gap streams", name)
		}
	}
}

// TestArrivalMeanRate: over many draws the mean gap must approximate
// 1/rate for every process — a distribution-sanity check that the
// samplers are parameterized correctly, not just deterministic.
func TestArrivalMeanRate(t *testing.T) {
	const rate = 200.0
	const n = 200000
	for _, tc := range []struct {
		name string
		spec ArrivalSpec
		tol  float64
	}{
		{"constant", ArrivalSpec{Process: "constant"}, 0.001},
		{"poisson", ArrivalSpec{Process: "poisson"}, 0.02},
		{"gamma-flat", ArrivalSpec{Process: "gamma", Shape: 0.5}, 0.03},
		{"gamma-regular", ArrivalSpec{Process: "gamma", Shape: 4}, 0.02},
		// The bursty cycle is rate-balanced (200ms@4x + 800ms@0.25x
		// averages 1x), so the long-run mean still holds.
		{"gamma-bursty", ArrivalSpec{Process: "gamma", Shape: 0.5, Periods: burstPeriods()}, 0.05},
	} {
		a, err := NewArrival(tc.spec, rate, xrand.New(99))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var sum time.Duration
		for i := 0; i < n; i++ {
			g := a.Next()
			if g < 0 {
				t.Fatalf("%s: negative gap %v", tc.name, g)
			}
			sum += g
		}
		mean := sum.Seconds() / n
		if rel := math.Abs(mean-1/rate) * rate; rel > tc.tol {
			t.Errorf("%s: mean gap %.6fs, want 1/%.0f (rel err %.4f > %.4f)", tc.name, mean, rate, rel, tc.tol)
		}
	}
}

// TestGammaBurstiness: shape < 1 must produce a more variable gap
// stream than Poisson (coefficient of variation > 1), shape > 1 a more
// regular one — the property that makes the knob worth having.
func TestGammaBurstiness(t *testing.T) {
	cv := func(spec ArrivalSpec) float64 {
		a, err := NewArrival(spec, 100, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			g := a.Next().Seconds()
			sum += g
			sumSq += g * g
		}
		mean := sum / n
		return math.Sqrt(sumSq/n-mean*mean) / mean
	}
	bursty := cv(ArrivalSpec{Process: "gamma", Shape: 0.3})
	poisson := cv(ArrivalSpec{Process: "poisson"})
	regular := cv(ArrivalSpec{Process: "gamma", Shape: 6})
	if !(bursty > poisson && poisson > regular) {
		t.Fatalf("CV ordering violated: gamma(0.3)=%.3f, poisson=%.3f, gamma(6)=%.3f", bursty, poisson, regular)
	}
	if poisson < 0.9 || poisson > 1.1 {
		t.Errorf("poisson CV = %.3f, want ~1", poisson)
	}
}

// TestGammaPeriodsModulate: during the 4x burst phase the mean gap must
// be ~4x shorter than during the 0.25x quiet phase.
func TestGammaPeriodsModulate(t *testing.T) {
	a, err := NewArrival(ArrivalSpec{Process: "gamma", Shape: 1, Periods: burstPeriods()}, 100, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	g := a.(*gammaArrival)
	var burstSum, quietSum time.Duration
	var burstN, quietN int
	for i := 0; i < 200000; i++ {
		inBurst := g.idx == 0
		gap := a.Next()
		if inBurst {
			burstSum += gap
			burstN++
		} else {
			quietSum += gap
			quietN++
		}
	}
	if burstN == 0 || quietN == 0 {
		t.Fatalf("phases not visited: burst %d, quiet %d", burstN, quietN)
	}
	ratio := (quietSum.Seconds() / float64(quietN)) / (burstSum.Seconds() / float64(burstN))
	if ratio < 8 || ratio > 32 { // ideal 16x (4 / 0.25), generous band
		t.Fatalf("quiet/burst mean-gap ratio = %.1f, want ~16", ratio)
	}
}

// TestArrivalSpecValidation: malformed specs are rejected with errors,
// not silently defaulted.
func TestArrivalSpecValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec ArrivalSpec
		rate float64
	}{
		{"unknown process", ArrivalSpec{Process: "weibull"}, 10},
		{"zero rate", ArrivalSpec{Process: "poisson"}, 0},
		{"negative rate", ArrivalSpec{Process: "constant"}, -1},
		{"shape on poisson", ArrivalSpec{Process: "poisson", Shape: 2}, 10},
		{"periods on constant", ArrivalSpec{Process: "constant", Periods: burstPeriods()}, 10},
		{"negative shape", ArrivalSpec{Process: "gamma", Shape: -1}, 10},
		{"zero-mult period", ArrivalSpec{Process: "gamma", Periods: []Period{{Dur: Duration(time.Second), RateMult: 0}}}, 10},
		{"zero-dur period", ArrivalSpec{Process: "gamma", Periods: []Period{{Dur: 0, RateMult: 1}}}, 10},
	} {
		if _, err := NewArrival(tc.spec, tc.rate, xrand.New(1)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
