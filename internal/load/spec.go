package load

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"iokast/internal/iogen"
	"iokast/internal/stream"
	"iokast/internal/trace"
	"iokast/internal/xrand"
)

// Op identifies one request kind in a workload mix.
type Op string

// The request kinds a mix may weight.
const (
	OpIngest       Op = "ingest"        // POST /traces
	OpBatch        Op = "batch"         // POST /traces/batch
	OpSimilarID    Op = "similar_id"    // GET /similar?id=&k=
	OpSimilarTrace Op = "similar_trace" // POST /similar (query-by-trace)
	OpClassify     Op = "classify"      // POST /classify
	OpDelete       Op = "delete"        // DELETE /traces/{id}
	OpStream       Op = "stream"        // POST /ingest (streaming NDJSON events)
)

// Ops lists every known op in a fixed order.
var Ops = []Op{OpIngest, OpBatch, OpSimilarID, OpSimilarTrace, OpClassify, OpDelete, OpStream}

// Endpoint returns the metrics/SLO label for the op: the HTTP method
// plus the URL path pattern it hits.
func (o Op) Endpoint() string {
	switch o {
	case OpIngest:
		return "POST /traces"
	case OpBatch:
		return "POST /traces/batch"
	case OpSimilarID:
		return "GET /similar"
	case OpSimilarTrace:
		return "POST /similar"
	case OpClassify:
		return "POST /classify"
	case OpDelete:
		return "DELETE /traces/{id}"
	case OpStream:
		return "POST /ingest"
	}
	return string(o)
}

// MixEntry weights one op in the workload mix.
type MixEntry struct {
	Op     Op      `json:"op"`
	Weight float64 `json:"weight"`
}

// Spec describes one open-loop load run. It is JSON-serializable (the
// --spec file format) and everything downstream — schedules, bodies,
// target ids — is a pure function of it, Seed included.
type Spec struct {
	// Clients is the number of independent open-loop clients; each has
	// its own arrival process and body stream seeded from Seed.
	Clients int `json:"clients"`
	// Duration is how much schedule to generate per client.
	Duration Duration `json:"duration"`
	// Rate is the per-client target rate in requests/second; aggregate
	// offered load is Clients*Rate.
	Rate float64 `json:"rate"`
	// Arrival selects the inter-arrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// Mix weights the request kinds. Weights need not sum to 1.
	Mix []MixEntry `json:"mix"`
	// Seed makes the whole run deterministic.
	Seed uint64 `json:"seed"`
	// Prefill is how many traces to ingest (and label with their
	// generator category) before the timed run, giving the read ops a
	// stable id range to target: queries hit [0, Prefill/2), deletes
	// consume [Prefill/2, Prefill).
	Prefill int `json:"prefill"`
	// BatchSize is the traces per OpBatch request (default 4).
	BatchSize int `json:"batch_size,omitempty"`
	// K is the neighbour count for query ops (default 5).
	K int `json:"k,omitempty"`
	// Categories restricts body synthesis; empty means
	// iogen.LoadCategories.
	Categories []string `json:"categories,omitempty"`
}

// ReadSpec loads a JSON spec file and validates it.
func ReadSpec(path string) (Spec, error) {
	var s Spec
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("load: parse spec %s: %v", path, err)
	}
	return s, s.Validate()
}

// Validate checks the spec and applies no defaults (see WithDefaults).
func (s Spec) Validate() error {
	if s.Clients < 1 {
		return fmt.Errorf("load: clients must be >= 1, got %d", s.Clients)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("load: duration must be > 0, got %v", s.Duration)
	}
	if err := s.Arrival.Validate(s.Rate); err != nil {
		return err
	}
	if len(s.Mix) == 0 {
		return fmt.Errorf("load: empty mix")
	}
	total := 0.0
	needIDs := false
	for i, m := range s.Mix {
		if !(m.Weight >= 0) {
			return fmt.Errorf("load: mix[%d] (%s) weight must be >= 0, got %v", i, m.Op, m.Weight)
		}
		known := false
		for _, op := range Ops {
			if m.Op == op {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("load: mix[%d]: unknown op %q", i, m.Op)
		}
		total += m.Weight
		if m.Weight > 0 && (m.Op == OpSimilarID || m.Op == OpDelete) {
			needIDs = true
		}
	}
	if total <= 0 {
		return fmt.Errorf("load: mix weights sum to %v; at least one must be positive", total)
	}
	if needIDs && s.Prefill < 2 {
		return fmt.Errorf("load: mix includes similar_id/delete but prefill is %d (need >= 2 to give them target ids)", s.Prefill)
	}
	if s.Prefill < 0 || s.BatchSize < 0 || s.K < 0 {
		return fmt.Errorf("load: prefill/batch_size/k must be >= 0")
	}
	for _, c := range s.Categories {
		known := false
		for _, cat := range iogen.ExtendedCategories {
			if iogen.Category(c) == cat {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("load: unknown trace category %q", c)
		}
	}
	return nil
}

// WithDefaults fills the optional knobs.
func (s Spec) WithDefaults() Spec {
	if s.BatchSize == 0 {
		s.BatchSize = 4
	}
	if s.K == 0 {
		s.K = 5
	}
	return s
}

func (s Spec) categories() []iogen.Category {
	cats := make([]iogen.Category, len(s.Categories))
	for i, c := range s.Categories {
		cats[i] = iogen.Category(c)
	}
	return cats // empty slice falls back to iogen.LoadCategories downstream
}

// Request is one scheduled HTTP call: fire at Due (offset from the run
// start), whatever has happened to earlier requests — that is the
// open-loop contract.
type Request struct {
	Client int
	Due    time.Duration
	Op     Op
	Method string
	Path   string // path plus query, e.g. "/similar?id=3&k=5"
	Body   string // empty for GET/DELETE
}

// BuildSchedule expands the spec into the full request schedule, sorted
// by due time (ties broken by client then op, so the order itself is
// deterministic). Each client draws from three private xrand streams —
// arrival gaps, op selection, bodies — all derived from
// iogen.ClientSeed(spec.Seed, client), so schedules are reproducible
// and per-client stable under changes to the client count.
func BuildSchedule(spec Spec) ([]Request, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.WithDefaults()

	var reqs []Request
	for c := 0; c < spec.Clients; c++ {
		root := xrand.New(iogen.ClientSeed(spec.Seed, c))
		arrivalRand, opRand := root.Split(), root.Split()
		bodies := iogen.NewBodyGen(root.Split().Uint64(), spec.categories())
		arrival, err := NewArrival(spec.Arrival, spec.Rate, arrivalRand)
		if err != nil {
			return nil, err
		}
		cl := clientSchedule{spec: spec, client: c, r: opRand, bodies: bodies}
		for t := arrival.Next(); t <= time.Duration(spec.Duration); t += arrival.Next() {
			reqs = append(reqs, cl.next(t))
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].Due != reqs[j].Due {
			return reqs[i].Due < reqs[j].Due
		}
		return reqs[i].Client < reqs[j].Client
	})
	return reqs, nil
}

// clientSchedule carries one client's request-construction state.
type clientSchedule struct {
	spec    Spec
	client  int
	r       *xrand.Rand
	bodies  *iogen.BodyGen
	deleted int // deletes issued so far: walks this client's delete slice
}

// next builds the request due at t.
func (c *clientSchedule) next(t time.Duration) Request {
	req := Request{Client: c.client, Due: t}
	req.Op = c.pickOp()
	switch req.Op {
	case OpIngest:
		body, _ := c.bodies.Next()
		req.Method, req.Path, req.Body = "POST", "/traces", body
	case OpBatch:
		batch := struct {
			Traces []string `json:"traces"`
		}{Traces: make([]string, c.spec.BatchSize)}
		for i := range batch.Traces {
			batch.Traces[i], _ = c.bodies.Next()
		}
		b, _ := json.Marshal(batch)
		req.Method, req.Path, req.Body = "POST", "/traces/batch", string(b)
	case OpSimilarID:
		req.Method = "GET"
		req.Path = fmt.Sprintf("/similar?id=%d&k=%d", c.r.Intn(c.queryIDs()), c.spec.K)
	case OpSimilarTrace:
		body, _ := c.bodies.Next()
		req.Method, req.Body = "POST", body
		req.Path = fmt.Sprintf("/similar?k=%d", c.spec.K)
	case OpClassify:
		body, _ := c.bodies.Next()
		req.Method, req.Body = "POST", body
		req.Path = fmt.Sprintf("/classify?k=%d", c.spec.K)
	case OpDelete:
		req.Method = "DELETE"
		req.Path = fmt.Sprintf("/traces/%d", c.nextDeleteID())
	case OpStream:
		body, _ := c.bodies.Next()
		req.Method, req.Body = "POST", StreamBody(body)
		req.Path = fmt.Sprintf("/ingest?k=%d", c.spec.K)
	}
	return req
}

func (c *clientSchedule) pickOp() Op {
	total := 0.0
	for _, m := range c.spec.Mix {
		total += m.Weight
	}
	x := c.r.Float64() * total
	for _, m := range c.spec.Mix {
		if x -= m.Weight; x < 0 {
			return m.Op
		}
	}
	return c.spec.Mix[len(c.spec.Mix)-1].Op
}

// queryIDs is the id range similar_id targets: the lower half of the
// prefill, which deletes never touch, so queries don't decay into 404s
// as the run progresses.
func (c *clientSchedule) queryIDs() int {
	n := c.spec.Prefill / 2
	if n < 1 {
		n = 1
	}
	return n
}

// nextDeleteID walks this client's round-robin slice of the delete pool
// (the upper half of the prefill) without replacement. Once a client
// exhausts its slice it wraps: the repeats answer 404, which the report
// counts but the error budget (5xx + transport) ignores — an idempotent
// re-delete is not a server failure.
func (c *clientSchedule) nextDeleteID() int {
	lo := c.spec.Prefill / 2
	pool := c.spec.Prefill - lo
	// The i-th delete of client c targets lo + (c + i*Clients) mod pool.
	id := lo + (c.client+c.deleted*c.spec.Clients)%pool
	c.deleted++
	return id
}

// StreamBody converts one canonical trace text into the NDJSON event body
// POST /ingest accepts: one structured op event per line, no session name
// (the server's anonymous per-connection session finalises at EOF with the
// whole-trace classification).
func StreamBody(text string) string {
	tr, err := trace.ParseString(text)
	if err != nil {
		// Body generators only emit canonical text; an empty event stream is
		// still a valid (empty) /ingest request if that ever changes.
		return ""
	}
	var b strings.Builder
	for _, op := range tr.Ops {
		line, _ := json.Marshal(stream.Event{Op: op.Name, Handle: op.Handle, Bytes: op.Bytes, Addr: op.Addr, Path: op.Path})
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// PrefillBodies synthesizes the prefill corpus: Prefill traces with
// their ground-truth category labels, deterministic in Seed (stream
// "client -1", so it does not overlap any client's bodies).
func PrefillBodies(spec Spec) (bodies []string, labels []string) {
	g := iogen.NewBodyGen(iogen.ClientSeed(spec.Seed, -1), spec.categories())
	for i := 0; i < spec.Prefill; i++ {
		b, cat := g.Next()
		bodies = append(bodies, b)
		labels = append(labels, string(cat))
	}
	return bodies, labels
}

// ParseMix parses the -mix flag form "op=weight,op=weight".
func ParseMix(s string) ([]MixEntry, error) {
	var mix []MixEntry
	for _, part := range splitNonEmpty(s, ',') {
		op, ws, ok := strings.Cut(part, "=")
		if !ok || op == "" {
			return nil, fmt.Errorf("load: bad mix entry %q (want op=weight)", part)
		}
		w, err := strconv.ParseFloat(ws, 64)
		if err != nil {
			return nil, fmt.Errorf("load: bad mix weight in %q: %v", part, err)
		}
		mix = append(mix, MixEntry{Op: Op(op), Weight: w})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("load: empty mix %q", s)
	}
	return mix, nil
}

// ParsePeriods parses the -periods flag form "dur*mult,dur*mult", e.g.
// "200ms*4,800ms*0.25".
func ParsePeriods(s string) ([]Period, error) {
	var ps []Period
	for _, part := range splitNonEmpty(s, ',') {
		durStr, ms, ok := strings.Cut(part, "*")
		if !ok {
			return nil, fmt.Errorf("load: bad period %q (want dur*mult, e.g. 200ms*4)", part)
		}
		d, err := time.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("load: bad period duration %q: %v", durStr, err)
		}
		mult, err := strconv.ParseFloat(ms, 64)
		if err != nil {
			return nil, fmt.Errorf("load: bad period multiplier in %q: %v", part, err)
		}
		ps = append(ps, Period{Dur: Duration(d), RateMult: mult})
	}
	if len(ps) == 0 {
		return nil, fmt.Errorf("load: empty periods %q", s)
	}
	return ps, nil
}

func splitNonEmpty(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == sep {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
