package shard

// FuzzShardRouting checks the properties every sharded data directory's
// durability rests on: Route is a pure function of (id, seed, n) — the same
// inputs yield the same shard no matter when, how often, or in what order
// it is called, so an id can never move between shards — its result is
// always in range, and over a modest window of consecutive ids every shard
// is reachable (no shard is structurally starved by the hash).

import "testing"

func FuzzShardRouting(f *testing.F) {
	f.Add(0, uint64(0), uint8(4))
	f.Add(1, uint64(0xdeadbeef), uint8(7))
	f.Add(1<<30, uint64(1), uint8(1))
	f.Add(12345, uint64(0x9e3779b97f4a7c15), uint8(16))
	f.Fuzz(func(t *testing.T, id int, seed uint64, nRaw uint8) {
		n := int(nRaw%16) + 1
		if id < 0 {
			id = -(id + 1)
		}

		got := Route(id, seed, n)
		if got < 0 || got >= n {
			t.Fatalf("Route(%d, %#x, %d) = %d out of range", id, seed, n, got)
		}
		// Determinism: recomputing — interleaved with calls for other ids,
		// as mutations and recovery walks do — never moves the id.
		for probe := 0; probe < 3; probe++ {
			Route(id+probe+1, seed, n)
			if again := Route(id, seed, n); again != got {
				t.Fatalf("Route(%d, %#x, %d) moved: %d then %d", id, seed, n, got, again)
			}
		}
		// Independence from n only through the final reduction: a different
		// shard count may re-home the id (that is why MANIFEST pins n), but
		// must still land in range.
		if n > 1 {
			if alt := Route(id, seed, n-1); alt < 0 || alt >= n-1 {
				t.Fatalf("Route(%d, %#x, %d) = %d out of range", id, seed, n-1, alt)
			}
		}
		// Coverage: every shard is hit within a window of 256*n consecutive
		// ids starting at the fuzzed id. With a mixing hash the chance of a
		// miss is (1-1/n)^(256n) < 1e-100; a failure means the hash is
		// structurally biased for this seed.
		hit := make([]bool, n)
		left := n
		for probe := 0; probe < 256*n && left > 0; probe++ {
			if sh := Route(id+probe, seed, n); !hit[sh] {
				hit[sh] = true
				left--
			}
		}
		if left != 0 {
			t.Fatalf("seed %#x n %d: %d shards unreachable in %d consecutive ids from %d", seed, n, left, 256*n, id)
		}
	})
}
