package shard

import (
	"fmt"
	"math"
	"testing"

	"iokast/internal/cli"
	"iokast/internal/engine"
	"iokast/internal/store"
	"iokast/internal/token"
)

// The headline guarantee of the package: a Sharded corpus answers Similar
// and SimilarTrace bit-identically to one engine.Engine over the same
// corpus — same neighbor ids, same float64 bits, same order — for every
// kernel, any shard count, and under interleaved Add/AddBatch/Remove.
// Normalized similarity is pairwise, so per-shard top-k lists merge
// exactly; and every kernel accumulates integer-valued products in
// float64, which is exact, so a score computed in a shard's interner
// carries the same bits as the single engine's cached Gram entry.

func assertNeighborsEqual(t *testing.T, ctx string, want, got []engine.Neighbor) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d neighbors, want %d\n got: %v\nwant: %v", ctx, len(got), len(want), got, want)
	}
	for i := range want {
		if want[i].ID != got[i].ID ||
			math.Float64bits(want[i].Similarity) != math.Float64bits(got[i].Similarity) {
			t.Fatalf("%s: neighbor %d: got id=%d sim=%x, want id=%d sim=%x",
				ctx, i, got[i].ID, math.Float64bits(got[i].Similarity),
				want[i].ID, math.Float64bits(want[i].Similarity))
		}
	}
}

// kernelSpecs are the kernel configurations the equivalence suite sweeps:
// the paper's kernel at two cut weights plus every baseline family.
var kernelSpecs = []cli.KernelSpec{
	{Name: "kast", CutWeight: 2},
	{Name: "kast", CutWeight: 4},
	{Name: "blended"},
	{Name: "spectrum"},
	{Name: "bagoftokens"},
}

var equivShardCounts = []int{1, 2, 4, 7}

// ingest applies the same interleaved mutation sequence to the single
// engine and the sharded corpus: batches, single adds, and removals mixed,
// so ids, tombstones, and per-shard local orders all get exercised.
func ingest(t *testing.T, eng *engine.Engine, sh *Sharded, xs []token.String) {
	t.Helper()
	step := func(singleIDs, shardIDs []int, err1, err2 error) {
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(singleIDs) != len(shardIDs) {
			t.Fatalf("id counts diverge: %v vs %v", singleIDs, shardIDs)
		}
		for i := range singleIDs {
			if singleIDs[i] != shardIDs[i] {
				t.Fatalf("ids diverge: %v vs %v", singleIDs, shardIDs)
			}
		}
	}
	a, err1 := eng.AddBatch(xs[:8])
	b, err2 := sh.AddBatch(xs[:8])
	step(a, b, err1, err2)
	for _, x := range xs[8:12] {
		step([]int{eng.Add(x)}, []int{sh.Add(x)}, nil, nil)
	}
	for _, id := range []int{3, 9} {
		if err := eng.Remove(id); err != nil {
			t.Fatal(err)
		}
		if err := sh.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	a, err1 = eng.AddBatch(xs[12:])
	b, err2 = sh.AddBatch(xs[12:])
	step(a, b, err1, err2)
}

func TestShardedMatchesSingleEngine(t *testing.T) {
	xs := corpus(t, 28, 7)
	queries := corpus(t, 32, 8)[28:] // held out: never ingested anywhere
	for _, spec := range kernelSpecs {
		for _, shards := range equivShardCounts {
			name := fmt.Sprintf("%s-cut%d-k%d/shards=%d", spec.Name, spec.CutWeight, spec.K, shards)
			t.Run(name, func(t *testing.T) {
				kern1, err := spec.Build()
				if err != nil {
					t.Fatal(err)
				}
				kern2, err := spec.Build()
				if err != nil {
					t.Fatal(err)
				}
				eng := engine.New(engine.Options{Kernel: kern1, SketchDim: -1})
				sh, err := New(Options{Shards: shards, Seed: 0xc0ffee, Engine: engine.Options{Kernel: kern2, SketchDim: -1}})
				if err != nil {
					t.Fatal(err)
				}
				ingest(t, eng, sh, xs)

				for id := 0; id < len(xs); id++ {
					for _, k := range []int{0, 3, 7, -1} {
						want, err1 := eng.Similar(id, k)
						got, err2 := sh.Similar(id, k)
						if (err1 == nil) != (err2 == nil) {
							t.Fatalf("Similar(%d,%d): errors diverge: %v vs %v", id, k, err1, err2)
						}
						if err1 != nil {
							continue // both reject (removed id)
						}
						assertNeighborsEqual(t, fmt.Sprintf("Similar(%d,%d)", id, k), want, got)
					}
				}
				for qi, q := range queries {
					for _, k := range []int{5, -1} {
						// rerank >= corpus size forces the exact path on
						// both sides, where bit-identity is guaranteed.
						want, err1 := eng.SimilarTrace(q, k, len(xs))
						got, err2 := sh.SimilarTrace(q, k, len(xs))
						if err1 != nil || err2 != nil {
							t.Fatal(err1, err2)
						}
						assertNeighborsEqual(t, fmt.Sprintf("SimilarTrace(q%d,%d)", qi, k), want, got)
					}
				}
			})
		}
	}
}

// TestShardedApproxFullRerank: with sketching enabled and a rerank covering
// the corpus, SimilarApprox must coincide with Similar — and therefore with
// the single engine — on every live id.
func TestShardedApproxFullRerank(t *testing.T) {
	xs := corpus(t, 24, 9)
	spec := cli.KernelSpec{Name: "kast", CutWeight: 2}
	kern1, _ := spec.Build()
	kern2, _ := spec.Build()
	eng := engine.New(engine.Options{Kernel: kern1})
	sh, err := New(Options{Shards: 4, Seed: 1, Engine: engine.Options{Kernel: kern2}})
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, eng, sh, xs)
	for id := 0; id < len(xs); id++ {
		want, err1 := eng.Similar(id, 6)
		got, err2 := sh.SimilarApprox(id, 6, len(xs))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("id %d: errors diverge: %v vs %v", id, err1, err2)
		}
		if err1 != nil {
			continue
		}
		assertNeighborsEqual(t, fmt.Sprintf("SimilarApprox(%d)", id), want, got)
	}
	// Default rerank still returns well-formed, self-free results.
	ns, err := sh.SimilarApprox(0, 6, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 6 {
		t.Fatalf("default rerank returned %d neighbors, want 6", len(ns))
	}
	for _, nb := range ns {
		if nb.ID == 0 {
			t.Fatal("approx neighbors contain the query id")
		}
	}
	// Disabled sketching is reported like the engine reports it.
	nosk, err := New(Options{Shards: 2, Engine: engine.Options{SketchDim: -1}})
	if err != nil {
		t.Fatal(err)
	}
	nosk.Add(xs[0])
	if _, err := nosk.SimilarApprox(0, 3, -1); err == nil {
		t.Fatal("SimilarApprox with sketching disabled succeeded")
	}
}

// TestShardedDurableMatchesSingleEngine: the bit-identity contract holds
// across a kill-without-close crash and concurrent per-shard recovery.
func TestShardedDurableMatchesSingleEngine(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 20, 11)
	spec := cli.KernelSpec{Name: "kast", CutWeight: 2}
	kern1, _ := spec.Build()
	kern2, _ := spec.Build()
	eng := engine.New(engine.Options{Kernel: kern1})
	opt := Options{Shards: 4, Seed: 5, Engine: engine.Options{Kernel: kern2}, Store: store.Options{SnapshotEvery: -1}}
	sh, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, eng, sh, xs)
	// Kill: no Close. Reopen concurrently recovers every shard WAL.
	r, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for id := 0; id < len(xs); id++ {
		want, err1 := eng.Similar(id, -1)
		got, err2 := r.Similar(id, -1)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("id %d: errors diverge: %v vs %v", id, err1, err2)
		}
		if err1 != nil {
			continue
		}
		assertNeighborsEqual(t, fmt.Sprintf("recovered Similar(%d)", id), want, got)
	}
}
