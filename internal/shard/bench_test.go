package shard

import (
	"fmt"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/sketch"
	"iokast/internal/token"
	"iokast/internal/xrand"
)

// benchStrings builds n deterministic synthetic weighted strings, small
// enough (6–14 tokens) that an N=1024 corpus is benchable: the point of
// these benchmarks is how pair work scales with the shard count, not the
// per-pair kernel cost (BenchmarkKastCompare measures that on real-sized
// traces).
func benchStrings(n int) []token.String {
	vocab := []string{"read[4096]", "read[512]", "write[4096]", "write[64]", "lseek[0]", "open[0]", "close[0]", "fsync[0]"}
	r := xrand.New(0xb0b)
	xs := make([]token.String, n)
	for i := range xs {
		m := r.IntRange(6, 14)
		s := token.String{{Literal: token.LitRoot, Weight: 1}}
		for j := 0; j < m; j++ {
			s = append(s, token.Token{Literal: vocab[r.Intn(len(vocab))], Weight: r.IntRange(1, 4)})
		}
		xs[i] = s
	}
	return xs
}

func benchEngineOptions() engine.Options {
	return engine.Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: -1}
}

// BenchmarkShardedAddBatch ingests N=1024 strings in one batch, single
// engine vs 4 shards. Sharding drops the pair work from N^2/2 kernel
// evaluations to N^2/(2*shards) (cross-shard pairs are never computed) and
// runs the per-shard sub-batches in parallel, so ingest scales near-
// linearly with the shard count.
func BenchmarkShardedAddBatch(b *testing.B) {
	xs := benchStrings(1024)
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.New(benchEngineOptions())
			if _, err := eng.AddBatch(xs); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sh, err := New(Options{Shards: shards, Engine: benchEngineOptions()})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sh.AddBatch(xs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchANNEngineOptions is the production query configuration: sketching
// on at the default width, LSH-banded candidate generation on at the
// default banding — what cmd/iokserve runs with.
func benchANNEngineOptions() engine.Options {
	return engine.Options{Kernel: &core.Kast{CutWeight: 2}, ANNBands: sketch.DefaultBands}
}

// BenchmarkShardedSimilar answers top-10 query-by-trace requests on the
// production approximate path (banded candidate generation + default
// exact rerank — what cmd/iokserve serves) over an N=1024 corpus, single
// engine vs 4 shards. The query is embedded once and the prepared sketch,
// band signature, and self-similarity are shared across the fan-out; the
// rerank budget is global, so the shards collectively evaluate about as
// many kernels as the single engine — the fan-out costs coordination, not
// duplicated work.
func BenchmarkShardedSimilar(b *testing.B) {
	const n = 1024
	xs := benchStrings(n)
	queries := benchStrings(n + 64)[n:]
	b.Run("single", func(b *testing.B) {
		eng := engine.New(benchANNEngineOptions())
		if _, err := eng.AddBatch(xs); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.SimilarTrace(queries[i%len(queries)], 10, -1); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sh, err := New(Options{Shards: shards, Engine: benchANNEngineOptions()})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sh.AddBatch(xs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sh.SimilarTrace(queries[i%len(queries)], 10, -1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedSimilarByID answers top-10 by-id approximate queries
// (?approx=1) over the same corpus. The single engine answers purely from
// cached state — its Gram row and stored signature — while remote shards,
// holding no kernel values against a foreign id, must evaluate their
// shortlists; the stored-query fan-out shares the owner's embedding so
// that is the only extra work.
func BenchmarkShardedSimilarByID(b *testing.B) {
	const n = 1024
	xs := benchStrings(n)
	b.Run("single", func(b *testing.B) {
		eng := engine.New(benchANNEngineOptions())
		if _, err := eng.AddBatch(xs); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.SimilarApprox(i%n, 10, -1); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sh, err := New(Options{Shards: shards, Engine: benchANNEngineOptions()})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sh.AddBatch(xs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sh.SimilarApprox(i%n, 10, -1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedSimilarExact answers exact top-10 queries over the same
// corpus. The single engine reads its cached Gram row; the sharded corpus
// recomputes one kernel row, fanned out across shards — the price of
// having no cross-shard Gram state, bounded by parallelism. This is the
// worst case for sharding and is deliberately not in the CI bench gate;
// BenchmarkShardedSimilar above covers the production query path.
func BenchmarkShardedSimilarExact(b *testing.B) {
	const n = 1024
	xs := benchStrings(n)
	b.Run("single", func(b *testing.B) {
		eng := engine.New(benchEngineOptions())
		if _, err := eng.AddBatch(xs); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Similar(i%n, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sh, err := New(Options{Shards: shards, Engine: benchEngineOptions()})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sh.AddBatch(xs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sh.Similar(i%n, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
