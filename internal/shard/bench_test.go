package shard

import (
	"fmt"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/token"
	"iokast/internal/xrand"
)

// benchStrings builds n deterministic synthetic weighted strings, small
// enough (6–14 tokens) that an N=1024 corpus is benchable: the point of
// these benchmarks is how pair work scales with the shard count, not the
// per-pair kernel cost (BenchmarkKastCompare measures that on real-sized
// traces).
func benchStrings(n int) []token.String {
	vocab := []string{"read[4096]", "read[512]", "write[4096]", "write[64]", "lseek[0]", "open[0]", "close[0]", "fsync[0]"}
	r := xrand.New(0xb0b)
	xs := make([]token.String, n)
	for i := range xs {
		m := r.IntRange(6, 14)
		s := token.String{{Literal: token.LitRoot, Weight: 1}}
		for j := 0; j < m; j++ {
			s = append(s, token.Token{Literal: vocab[r.Intn(len(vocab))], Weight: r.IntRange(1, 4)})
		}
		xs[i] = s
	}
	return xs
}

func benchEngineOptions() engine.Options {
	return engine.Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: -1}
}

// BenchmarkShardedAddBatch ingests N=1024 strings in one batch, single
// engine vs 4 shards. Sharding drops the pair work from N^2/2 kernel
// evaluations to N^2/(2*shards) (cross-shard pairs are never computed) and
// runs the per-shard sub-batches in parallel, so ingest scales near-
// linearly with the shard count.
func BenchmarkShardedAddBatch(b *testing.B) {
	xs := benchStrings(1024)
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.New(benchEngineOptions())
			if _, err := eng.AddBatch(xs); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sh, err := New(Options{Shards: shards, Engine: benchEngineOptions()})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sh.AddBatch(xs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedSimilar answers top-10 queries over an N=1024 corpus.
// The single engine reads its cached Gram row; the sharded corpus
// recomputes one kernel row, fanned out across shards — the price of
// having no cross-shard Gram state, bounded by parallelism.
func BenchmarkShardedSimilar(b *testing.B) {
	const n = 1024
	xs := benchStrings(n)
	b.Run("single", func(b *testing.B) {
		eng := engine.New(benchEngineOptions())
		if _, err := eng.AddBatch(xs); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Similar(i%n, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sh, err := New(Options{Shards: shards, Engine: benchEngineOptions()})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sh.AddBatch(xs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sh.Similar(i%n, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
