// Package shard scales the incremental Gram engine horizontally: a Sharded
// supervisor owns N independent engine+store pairs, routes every mutation
// to exactly one shard by a deterministic seeded hash of the trace's global
// id, and answers similarity queries by fanning the query out to all shards
// in parallel and exactly merging the per-shard top-k.
//
// Sharding is lossless for similarity queries. The engine's scores are the
// normalized kernel values k(x,y)/sqrt(k(x,x)k(y,y)), which are computable
// pairwise — no term depends on any third corpus entry. Over disjoint
// corpus partitions, the global top-k is therefore exactly the merge of the
// per-shard top-k lists: every member of the global top-k is in the top-k
// of its own shard, so fetching k candidates from each shard and re-sorting
// by (score, id) reproduces the single-engine answer bit for bit (every
// kernel in this project accumulates integer-valued products in float64,
// which is exact, so a score computed in any shard's interner equals the
// score the single engine would store). What sharding gives up is the
// cross-shard Gram entries: a Sharded corpus has no global Gram matrix, and
// Similar recomputes one kernel row at query time (parallel across shards)
// instead of reading cached matrix entries.
//
// What the supervisor buys: ingest work drops from O(N) kernel evaluations
// per insertion to O(N/shards), each shard has its own write lock, WAL and
// snapshot chain (no global mutex, no O(N) row growth on one matrix), and
// recovery opens all shards concurrently.
package shard

// Route maps a global trace id to its owner shard, deterministically in
// (id, seed, n). The mapping is pure — no state, no corpus — so it can be
// recomputed forever: an id never moves between shards, across restarts or
// across processes, as long as (seed, n) match, which the MANIFEST pins for
// a given data directory.
//
// The hash is the SplitMix64 finalizer (the same mixer xrand and sketch
// use) over the id keyed by a pre-mixed seed. Its output stream for a given
// input is identical across platforms and Go versions; TestRouteGolden pins
// reference values so the function can never change silently under an
// existing data directory.
func Route(id int, seed uint64, n int) int {
	if n <= 1 {
		return 0
	}
	z := uint64(id) ^ mix64(seed^0x9e3779b97f4a7c15)
	return int(mix64(z) % uint64(n))
}

// mix64 is the SplitMix64 finalizer: a bijective 64-bit mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
