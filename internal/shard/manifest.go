package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"iokast/internal/store"
)

// The MANIFEST pins everything a sharded data directory's layout depends
// on: the shard count and hash seed (which together fix the id routing) and
// the kernel/sketch configuration every shard engine must be opened with.
// Open refuses a directory whose manifest disagrees with the requested
// options — reading shard WALs under a different routing or kernel would
// silently mis-assign every id — rather than guessing.
//
// Layout (all integers little-endian, lengths uvarint):
//
//	magic    "IOKSHRD1" (8 bytes)
//	version  byte (= 1)
//	shards   uvarint
//	seed     uint64, the Route hash seed
//	kernel   uvarint length + kernel.Name() bytes
//	sketch   flag byte 0 (disabled) or 1 (enabled); if enabled:
//	         uvarint dim + uint64 seed
//	crc      uint32 CRC-32C over everything above
const (
	manifestName    = "MANIFEST"
	manifestMagic   = "IOKSHRD1"
	manifestVersion = 1
)

// maxShards bounds the shard count a manifest (or Options) may carry; a
// corrupted count must not drive directory fan-out or allocation.
const maxShards = 4096

var manifestCRCTable = crc32.MakeTable(crc32.Castagnoli)

// manifest is the decoded MANIFEST contents.
type manifest struct {
	shards     int
	seed       uint64
	kernel     string
	sketch     bool
	sketchDim  int
	sketchSeed uint64
}

func (m manifest) encode() []byte {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	buf.WriteString(manifestMagic)
	buf.WriteByte(manifestVersion)
	buf.Write(scratch[:binary.PutUvarint(scratch[:], uint64(m.shards))])
	binary.LittleEndian.PutUint64(scratch[:8], m.seed)
	buf.Write(scratch[:8])
	buf.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(m.kernel)))])
	buf.WriteString(m.kernel)
	if !m.sketch {
		buf.WriteByte(0)
	} else {
		buf.WriteByte(1)
		buf.Write(scratch[:binary.PutUvarint(scratch[:], uint64(m.sketchDim))])
		binary.LittleEndian.PutUint64(scratch[:8], m.sketchSeed)
		buf.Write(scratch[:8])
	}
	binary.LittleEndian.PutUint32(scratch[:4], crc32.Checksum(buf.Bytes(), manifestCRCTable))
	buf.Write(scratch[:4])
	return buf.Bytes()
}

func decodeManifest(data []byte) (manifest, error) {
	var m manifest
	if len(data) < len(manifestMagic)+1+4 {
		return m, fmt.Errorf("shard: manifest truncated (%d bytes)", len(data))
	}
	payload, stored := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(payload, manifestCRCTable); got != stored {
		return m, fmt.Errorf("shard: manifest crc mismatch: stored %08x, computed %08x", stored, got)
	}
	if string(payload[:len(manifestMagic)]) != manifestMagic {
		return m, fmt.Errorf("shard: bad manifest magic %q", payload[:len(manifestMagic)])
	}
	if v := payload[len(manifestMagic)]; v != manifestVersion {
		return m, fmt.Errorf("shard: unsupported manifest version %d", v)
	}
	br := bytes.NewReader(payload[len(manifestMagic)+1:])
	shards, err := binary.ReadUvarint(br)
	if err != nil || shards == 0 || shards > maxShards {
		return m, fmt.Errorf("shard: manifest shard count %d invalid", shards)
	}
	m.shards = int(shards)
	var u64 [8]byte
	if _, err := br.Read(u64[:]); err != nil {
		return m, fmt.Errorf("shard: manifest seed: %w", err)
	}
	m.seed = binary.LittleEndian.Uint64(u64[:])
	nameLen, err := binary.ReadUvarint(br)
	if err != nil || nameLen > 1024 {
		return m, fmt.Errorf("shard: manifest kernel name length invalid")
	}
	name := make([]byte, nameLen)
	if _, err := br.Read(name); err != nil {
		return m, fmt.Errorf("shard: manifest kernel name: %w", err)
	}
	m.kernel = string(name)
	flag, err := br.ReadByte()
	if err != nil {
		return m, fmt.Errorf("shard: manifest sketch flag: %w", err)
	}
	switch flag {
	case 0:
	case 1:
		m.sketch = true
		dim, err := binary.ReadUvarint(br)
		if err != nil || dim == 0 || dim > 1<<16 {
			return m, fmt.Errorf("shard: manifest sketch dim invalid")
		}
		m.sketchDim = int(dim)
		if _, err := br.Read(u64[:]); err != nil {
			return m, fmt.Errorf("shard: manifest sketch seed: %w", err)
		}
		m.sketchSeed = binary.LittleEndian.Uint64(u64[:])
	default:
		return m, fmt.Errorf("shard: manifest sketch flag %d invalid", flag)
	}
	if br.Len() != 0 {
		return m, fmt.Errorf("shard: manifest has %d trailing bytes", br.Len())
	}
	return m, nil
}

// loadOrCreateManifest reads and verifies the directory's MANIFEST, or
// writes want atomically if none exists yet. A manifest that disagrees with
// want on any field is a configuration error, reported field by field. A
// directory that has no manifest but does hold single-engine store files is
// refused rather than adopted: writing a MANIFEST beside a live WAL would
// make the existing corpus silently invisible (the shards would all open
// empty subdirectories).
func loadOrCreateManifest(path string, want manifest) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		dir := filepath.Dir(path)
		if hasStoreFiles(dir) {
			return fmt.Errorf("shard: %s holds single-engine store data with no MANIFEST; open it with iokast.OpenEngine (iokserve default -shards 1), or migrate it before sharding", dir)
		}
		return store.AtomicWriteFile(path, want.encode())
	}
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	have, err := decodeManifest(data)
	if err != nil {
		return err
	}
	switch {
	case have.shards != want.shards:
		return fmt.Errorf("shard: directory holds %d shards, opened with %d", have.shards, want.shards)
	case have.seed != want.seed:
		return fmt.Errorf("shard: directory routed with seed %#x, opened with %#x", have.seed, want.seed)
	case have.kernel != want.kernel:
		return fmt.Errorf("shard: directory built with kernel %q, opened with %q", have.kernel, want.kernel)
	case have.sketch != want.sketch || have.sketchDim != want.sketchDim || have.sketchSeed != want.sketchSeed:
		return fmt.Errorf("shard: sketch config mismatch: directory (enabled=%v dim=%d seed=%#x), opened with (enabled=%v dim=%d seed=%#x)",
			have.sketch, have.sketchDim, have.sketchSeed, want.sketch, want.sketchDim, want.sketchSeed)
	}
	return nil
}

// hasStoreFiles reports whether dir holds single-engine store data (WAL
// segments or snapshots at the top level — a sharded layout keeps those
// only inside shard-NNN/ subdirectories).
func hasStoreFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, "wal-") || strings.HasPrefix(name, "snap-") {
			return true
		}
	}
	return false
}
