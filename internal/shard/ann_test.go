package shard

import (
	"fmt"
	"testing"

	"iokast/internal/cli"
	"iokast/internal/engine"
	"iokast/internal/sketch"
)

// TestShardedANNFullRerankMatchesSingle extends the bit-identity contract
// to LSH-banded candidate generation: with ANN enabled on every shard and
// a rerank covering the corpus, Similar, SimilarApprox, and SimilarTrace
// all coincide with a single ANN-enabled engine — approximation never
// leaks into answers when the rerank pays for exactness.
func TestShardedANNFullRerankMatchesSingle(t *testing.T) {
	xs := corpus(t, 24, 9)
	queries := corpus(t, 28, 10)[24:]
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			spec := cli.KernelSpec{Name: "kast", CutWeight: 2}
			kern1, _ := spec.Build()
			kern2, _ := spec.Build()
			eopt := engine.Options{Kernel: kern1, ANNBands: sketch.DefaultBands}
			eng := engine.New(eopt)
			shOpt := engine.Options{Kernel: kern2, ANNBands: sketch.DefaultBands}
			sh, err := New(Options{Shards: shards, Seed: 1, Engine: shOpt})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, enabled := sh.ANNConfig(); !enabled {
				t.Fatal("ANN not enabled on the sharded corpus")
			}
			ingest(t, eng, sh, xs)
			for id := 0; id < len(xs); id++ {
				want, err1 := eng.Similar(id, 6)
				got, err2 := sh.SimilarApprox(id, 6, len(xs))
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("id %d: errors diverge: %v vs %v", id, err1, err2)
				}
				if err1 != nil {
					continue
				}
				assertNeighborsEqual(t, fmt.Sprintf("ANN SimilarApprox(%d)", id), want, got)

				gotExact, err := sh.Similar(id, 6)
				if err != nil {
					t.Fatal(err)
				}
				assertNeighborsEqual(t, fmt.Sprintf("ANN Similar(%d)", id), want, gotExact)
			}
			for qi, q := range queries {
				want, err1 := eng.SimilarTrace(q, 5, len(xs))
				got, err2 := sh.SimilarTrace(q, 5, len(xs))
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				assertNeighborsEqual(t, fmt.Sprintf("ANN SimilarTrace(q%d)", qi), want, got)
			}
		})
	}
}

// TestSimilarTraceSketchesOnce is the regression test for the fan-out
// fix: a sharded query-by-trace must embed the query exactly once and
// share the prepared sketch across every shard, not re-sketch per shard.
func TestSimilarTraceSketchesOnce(t *testing.T) {
	xs := corpus(t, 20, 3)
	queries := corpus(t, 24, 4)[20:]
	for _, spec := range []cli.KernelSpec{
		{Name: "kast", CutWeight: 2},
		{Name: "blended"},
	} {
		kern, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		sh, err := New(Options{Shards: 4, Seed: 2, Engine: engine.Options{Kernel: kern, ANNBands: sketch.DefaultBands}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sh.AddBatch(xs); err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			before := sketch.SketchOps()
			if _, err := sh.SimilarTrace(q, 5, -1); err != nil {
				t.Fatal(err)
			}
			if ops := sketch.SketchOps() - before; ops != 1 {
				t.Fatalf("%s query %d: %d sketch operations for one fan-out, want 1", spec.Name, qi, ops)
			}
		}
	}
}
