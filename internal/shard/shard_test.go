package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/iogen"
	"iokast/internal/store"
	"iokast/internal/token"
)

// corpus builds converted weighted strings from the paper's synthetic
// generator, deterministically.
func corpus(t testing.TB, n int, seed uint64) []token.String {
	t.Helper()
	ds, err := iogen.Build(iogen.PaperOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	if n > len(ds.Traces) {
		t.Fatalf("dataset has %d traces, want %d", len(ds.Traces), n)
	}
	return core.ConvertAll(ds.Traces[:n], core.Options{})
}

func kastOptions() Options {
	return Options{
		Shards: 3,
		Seed:   42,
		Engine: engine.Options{Kernel: &core.Kast{CutWeight: 2}},
		Store:  store.Options{SnapshotEvery: -1},
	}
}

// TestRouteGolden pins the routing hash. These values are part of every
// sharded data directory's on-disk contract: if this test fails, the hash
// changed, and every existing directory would recover with ids assigned to
// the wrong shards. Fix the hash, not the test.
func TestRouteGolden(t *testing.T) {
	cases := []struct {
		seed uint64
		n    int
		want []int
	}{
		{seed: 0x0, n: 2, want: []int{1, 1, 1, 1, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 0}},
		{seed: 0x0, n: 4, want: []int{3, 3, 1, 3, 1, 1, 2, 3, 2, 0, 3, 1, 3, 2, 2, 0}},
		{seed: 0x0, n: 7, want: []int{5, 4, 3, 3, 5, 3, 2, 3, 4, 0, 4, 4, 1, 5, 6, 4}},
		{seed: 0x1, n: 4, want: []int{0, 1, 2, 2, 2, 3, 3, 2, 2, 3, 3, 3, 2, 1, 2, 1}},
		{seed: 0xdeadbeef, n: 4, want: []int{1, 1, 0, 3, 0, 2, 1, 2, 0, 0, 2, 1, 2, 0, 1, 2}},
		{seed: 0x0, n: 16, want: []int{15, 7, 9, 3, 13, 9, 14, 15, 6, 8, 3, 5, 11, 6, 14, 4}},
	}
	for _, c := range cases {
		for id, want := range c.want {
			if got := Route(id, c.seed, c.n); got != want {
				t.Errorf("Route(%d, %#x, %d) = %d, want %d (the routing hash must never change)", id, c.seed, c.n, got, want)
			}
		}
	}
}

func TestRouteRangeAndCoverage(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 16} {
		for _, seed := range []uint64{0, 1, 0xdeadbeef} {
			hit := make([]bool, n)
			for id := 0; id < 256*n; id++ {
				sh := Route(id, seed, n)
				if sh < 0 || sh >= n {
					t.Fatalf("Route(%d, %#x, %d) = %d out of range", id, seed, n, sh)
				}
				hit[sh] = true
			}
			for sh, ok := range hit {
				if !ok {
					t.Errorf("n=%d seed=%#x: shard %d never routed to in %d ids", n, seed, sh, 256*n)
				}
			}
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	for _, m := range []manifest{
		{shards: 1, seed: 0, kernel: "kast"},
		{shards: 7, seed: 0xfeedface, kernel: "kast(cut=2)", sketch: true, sketchDim: 256, sketchSeed: 99},
	} {
		data := m.encode()
		got, err := decodeManifest(data)
		if err != nil {
			t.Fatalf("decode(%+v): %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip: got %+v, want %+v", got, m)
		}
		// Every single-bit corruption must be caught by the CRC (or the
		// structural checks behind it).
		for i := range data {
			bad := append([]byte(nil), data...)
			bad[i] ^= 0x40
			if _, err := decodeManifest(bad); err == nil {
				t.Fatalf("corrupted byte %d accepted", i)
			}
		}
		if _, err := decodeManifest(data[:len(data)-2]); err == nil {
			t.Fatal("truncated manifest accepted")
		}
	}
}

func TestOpenRefusesMismatchedManifest(t *testing.T) {
	dir := t.TempDir()
	opt := kastOptions()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(o *Options)
		want   string
	}{
		{"shards", func(o *Options) { o.Shards = 4 }, "holds 3 shards"},
		{"seed", func(o *Options) { o.Seed = 7 }, "routed with seed"},
		{"kernel", func(o *Options) { o.Engine.Kernel = &core.Kast{CutWeight: 4} }, "kernel"},
		{"sketch", func(o *Options) { o.Engine.SketchDim = -1 }, "sketch config mismatch"},
	}
	for _, c := range cases {
		bad := kastOptions()
		c.mutate(&bad)
		if _, err := Open(dir, bad); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s mismatch: got error %v, want containing %q", c.name, err, c.want)
		}
	}

	// The matching configuration still opens.
	s, err = Open(dir, opt)
	if err != nil {
		t.Fatalf("reopen with matching options: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A corrupt manifest is refused, not guessed around.
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, opt); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

// TestRefusesForeignLayouts: a single-engine data dir must not be silently
// adopted by shard.Open (its corpus would vanish behind a fresh MANIFEST
// and empty shard subdirs), and a sharded dir must not be opened as a
// single-engine store (its WALs live in subdirectories the store never
// reads). Both directions refuse with a pointer to the right opener.
func TestRefusesForeignLayouts(t *testing.T) {
	single := t.TempDir()
	eng, st, err := store.Open(single, func() *engine.Engine {
		return engine.New(engine.Options{Kernel: &core.Kast{CutWeight: 2}})
	}, store.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	eng.Add(corpus(t, 1, 1)[0])
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(single, kastOptions()); err == nil || !strings.Contains(err.Error(), "single-engine") {
		t.Fatalf("shard.Open adopted a single-engine dir: %v", err)
	}

	sharded := t.TempDir()
	s, err := Open(sharded, kastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Open(sharded, func() *engine.Engine {
		return engine.New(engine.Options{Kernel: &core.Kast{CutWeight: 2}})
	}, store.Options{}); err == nil || !strings.Contains(err.Error(), "sharded corpus") {
		t.Fatalf("store.Open adopted a sharded dir: %v", err)
	}
}

func TestShardedBasicLifecycle(t *testing.T) {
	xs := corpus(t, 12, 1)
	opt := kastOptions()
	opt.Engine.SketchDim = -1
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for _, x := range xs[:4] {
		ids = append(ids, s.Add(x))
	}
	batchIDs, err := s.AddBatch(xs[4:])
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, batchIDs...)
	for i, id := range ids {
		if id != i {
			t.Fatalf("ids not sequential: %v", ids)
		}
	}
	if s.Len() != len(xs) || s.NextID() != len(xs) {
		t.Fatalf("Len=%d NextID=%d, want %d", s.Len(), s.NextID(), len(xs))
	}

	// Every entry landed in the shard its id routes to, and is resolvable.
	got, gotIDs := s.Strings()
	for i, x := range got {
		if !x.Equal(xs[gotIDs[i]]) {
			t.Fatalf("entry %d does not round-trip", gotIDs[i])
		}
	}

	if err := s.Remove(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(3); err == nil {
		t.Fatal("double remove accepted")
	}
	if err := s.Remove(len(xs) + 5); err == nil {
		t.Fatal("remove of unassigned id accepted")
	}
	if s.Len() != len(xs)-1 {
		t.Fatalf("Len=%d after remove, want %d", s.Len(), len(xs)-1)
	}
	if _, err := s.Similar(3, 5); err == nil {
		t.Fatal("Similar on removed id succeeded")
	}
	ns, err := s.Similar(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 5 {
		t.Fatalf("got %d neighbors, want 5", len(ns))
	}
	for _, nb := range ns {
		if nb.ID == 0 || nb.ID == 3 {
			t.Fatalf("neighbor list contains query or removed id: %+v", ns)
		}
	}
	if _, err := s.SimilarTrace(nil, 5, -1); err == nil {
		t.Fatal("empty query accepted")
	}
	if s.Err() != nil {
		t.Fatalf("in-memory corpus reports persistence error: %v", s.Err())
	}
}

func TestShardedDurableReopen(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 16, 2)
	opt := kastOptions()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddBatch(xs[:10]); err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[10:] {
		s.Add(x)
	}
	if err := s.Remove(5); err != nil {
		t.Fatal(err)
	}
	wantSim, err := s.Similar(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Repaired() != 0 {
		t.Fatalf("clean reopen plugged %d slots", r.Repaired())
	}
	if r.Len() != len(xs)-1 || r.NextID() != len(xs) {
		t.Fatalf("recovered Len=%d NextID=%d, want %d/%d", r.Len(), r.NextID(), len(xs)-1, len(xs))
	}
	gotSim, err := r.Similar(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	assertNeighborsEqual(t, "reopen Similar", wantSim, gotSim)

	// The accessor surface is coherent after recovery.
	if r.Shards() != opt.Shards || r.Seed() != opt.Seed || !r.Durable() {
		t.Fatalf("Shards=%d Seed=%d Durable=%v", r.Shards(), r.Seed(), r.Durable())
	}
	if name := r.Kernel().Name(); !strings.Contains(name, "kast") {
		t.Fatalf("Kernel() = %q", name)
	}
	if stats := r.Stats(); len(stats) != opt.Shards {
		t.Fatalf("Stats() returned %d entries", len(stats))
	}
	for i, e := range r.Errs() {
		if e != nil {
			t.Fatalf("shard %d reports error after clean recovery: %v", i, e)
		}
	}
	if err := r.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i, st := range r.Stats() {
		if st.ReplayBacklog != 0 {
			t.Fatalf("shard %d backlog %d after explicit snapshot", i, st.ReplayBacklog)
		}
	}
}

// TestShardedKillWithoutClose is the clean crash: every mutation was
// acknowledged (per-shard WAL fsynced), the process dies without Close, and
// reopening must reproduce the corpus exactly.
func TestShardedKillWithoutClose(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 14, 3)
	opt := kastOptions()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(7); err != nil {
		t.Fatal(err)
	}
	wantStrings, wantIDs := s.Strings()
	wantSim, err := s.Similar(1, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Kill: no Close, no checkpoint.

	r, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Repaired() != 0 {
		t.Fatalf("acknowledged-only crash plugged %d slots", r.Repaired())
	}
	gotStrings, gotIDs := r.Strings()
	assertSameStrings(t, wantStrings, wantIDs, gotStrings, gotIDs)
	gotSim, err := r.Similar(1, -1)
	if err != nil {
		t.Fatal(err)
	}
	assertNeighborsEqual(t, "post-kill Similar", wantSim, gotSim)
}

// TestShardedTornBatchRecovery kills mid-AddBatch: one shard committed its
// sub-batch, the others never saw theirs. Recovery must keep every
// acknowledged entry, roll the committed (unacknowledged) sub-batch
// forward, plug durable tombstones for the lost globals, and settle into a
// state that is identical on every further reopen.
func TestShardedTornBatchRecovery(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 24, 4)
	opt := kastOptions()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	acked := xs[:12]
	if _, err := s.AddBatch(acked); err != nil {
		t.Fatal(err)
	}
	ackedStrings, ackedIDs := s.Strings()

	// Simulate the torn batch: route the next 12 globals, but commit only
	// the sub-batch of the shard that owns the first of them, bypassing the
	// supervisor — exactly the state a kill between per-shard commits
	// leaves on disk.
	first := s.NextID()
	target := Route(first, opt.Seed, opt.Shards)
	var sub []token.String
	var committed, lost []int
	for t2 := 0; t2 < 12; t2++ {
		if Route(first+t2, opt.Seed, opt.Shards) == target {
			sub = append(sub, xs[12+t2])
			committed = append(committed, first+t2)
		} else {
			lost = append(lost, first+t2)
		}
	}
	if len(committed) == 0 || len(lost) == 0 {
		t.Fatalf("degenerate routing for this seed: committed=%v lost=%v", committed, lost)
	}
	if _, err := s.engines[target].AddBatch(sub); err != nil {
		t.Fatal(err)
	}
	// Kill: no Close.

	r, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Globals after the last committed one never materialised; the walk
	// stops there, so only lost ids *before* it are plugged.
	lastCommitted := committed[len(committed)-1]
	wantPlugged := 0
	for _, g := range lost {
		if g < lastCommitted {
			wantPlugged++
		}
	}
	if r.Repaired() != wantPlugged {
		t.Fatalf("Repaired() = %d, want %d (lost=%v committed=%v)", r.Repaired(), wantPlugged, lost, committed)
	}
	if r.NextID() != lastCommitted+1 {
		t.Fatalf("NextID = %d, want %d", r.NextID(), lastCommitted+1)
	}

	// Every acknowledged entry survived, verbatim.
	gotStrings, gotIDs := r.Strings()
	byID := map[int]token.String{}
	for i, id := range gotIDs {
		byID[id] = gotStrings[i]
	}
	for i, id := range ackedIDs {
		got, ok := byID[id]
		if !ok {
			t.Fatalf("acknowledged id %d lost in recovery", id)
		}
		if !got.Equal(ackedStrings[i]) {
			t.Fatalf("acknowledged id %d corrupted in recovery", id)
		}
	}
	// The committed sub-batch rolled forward live; the lost globals read as
	// removed.
	for _, g := range committed {
		if _, ok := byID[g]; !ok {
			t.Fatalf("rolled-forward id %d not live", g)
		}
	}
	for _, g := range lost {
		if _, ok := byID[g]; ok {
			t.Fatalf("lost id %d reads as live", g)
		}
		if g < lastCommitted {
			if err := r.Remove(g); err == nil {
				t.Fatalf("plugged id %d accepted a Remove", g)
			}
		}
	}

	// The corpus keeps working: new ingest and queries.
	newID := r.Add(xs[0])
	if newID != lastCommitted+1 {
		t.Fatalf("post-recovery Add assigned %d, want %d", newID, lastCommitted+1)
	}
	if _, err := r.Similar(newID, 5); err != nil {
		t.Fatal(err)
	}
	mapping := append([]loc(nil), r.locals...)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// The repair is durable and the mapping deterministic: a further reopen
	// plugs nothing and derives the identical id layout.
	r2, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Repaired() != 0 {
		t.Fatalf("second reopen plugged %d slots (repair was not durable)", r2.Repaired())
	}
	if len(r2.locals) != len(mapping) {
		t.Fatalf("mapping length %d vs %d across reopen", len(r2.locals), len(mapping))
	}
	for g, lc := range mapping {
		if r2.locals[g] != lc {
			t.Fatalf("global %d mapped to %+v, was %+v before reopen", g, r2.locals[g], lc)
		}
	}
}

func assertSameStrings(t *testing.T, wantStrings []token.String, wantIDs []int, gotStrings []token.String, gotIDs []int) {
	t.Helper()
	if len(wantIDs) != len(gotIDs) {
		t.Fatalf("%d live entries, want %d", len(gotIDs), len(wantIDs))
	}
	for i := range wantIDs {
		if wantIDs[i] != gotIDs[i] {
			t.Fatalf("live ids %v, want %v", gotIDs, wantIDs)
		}
		if !wantStrings[i].Equal(gotStrings[i]) {
			t.Fatalf("entry %d does not match", wantIDs[i])
		}
	}
}
