package shard

import (
	"sync"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/store"
	"iokast/internal/token"
)

// TestConcurrentMutationsAndQueries hammers one sharded corpus from many
// goroutines — batch ingest, single adds, removals of own ids, exact and
// query-by-trace similarity, stats — and relies on the race detector (CI
// runs the suite under -race) to catch unsynchronised access between the
// supervisor's mapping, the ingest serialisation, and the per-shard
// engines.
func TestConcurrentMutationsAndQueries(t *testing.T) {
	xs := corpus(t, 24, 21)
	sh, err := New(Options{Shards: 4, Seed: 3, Engine: engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Seed corpus so queries have something to chew on from the start.
	if _, err := sh.AddBatch(xs[:8]); err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const rounds = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) { // batcher + remover of its own ids
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				batch := []token.String{xs[(w+r)%len(xs)], xs[(w+r+5)%len(xs)]}
				ids, err := sh.AddBatch(batch)
				if err != nil {
					t.Error(err)
					return
				}
				if err := sh.Remove(ids[0]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) { // single adds
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sh.Add(xs[(w*7+r)%len(xs)])
			}
		}(w)
		wg.Add(1)
		go func(w int) { // queries: by id (may race with removal — errors ok)
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if ns, err := sh.Similar((w+r)%8, 5); err == nil && len(ns) == 0 && sh.Len() > 1 {
					t.Error("Similar returned no neighbors on a populated corpus")
					return
				}
				if _, err := sh.SimilarTrace(xs[(w+r)%len(xs)], 3, -1); err != nil {
					t.Error(err)
					return
				}
				sh.Len()
				sh.Strings()
				_ = sh.Err()
			}
		}(w)
	}
	wg.Wait()
	if err := sh.Err(); err != nil {
		t.Fatal(err)
	}
	// The corpus is still coherent: every live id resolves and queries run.
	_, ids := sh.Strings()
	for _, id := range ids {
		if _, err := sh.Similar(id, 3); err != nil {
			t.Fatalf("post-race Similar(%d): %v", id, err)
		}
	}
}

// TestConcurrentDurableIngest repeats the hammering against a durable
// corpus, so WAL appends, auto-snapshots, and the supervisor all overlap,
// then reopens to check nothing torn was acknowledged.
func TestConcurrentDurableIngest(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 16, 22)
	opt := Options{
		Shards: 3, Seed: 9,
		Engine: engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 2, SketchDim: -1},
		// Tiny cadence so automatic snapshots race the ingest on purpose.
		Store: store.Options{SnapshotEvery: 8},
	}
	sh, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				if _, err := sh.AddBatch([]token.String{xs[(w+r)%len(xs)], xs[(w+r+3)%len(xs)]}); err != nil {
					t.Error(err)
					return
				}
				if _, err := sh.SimilarTrace(xs[r%len(xs)], 4, -1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := sh.Err(); err != nil {
		t.Fatal(err)
	}
	wantStrings, wantIDs := sh.Strings()
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	gotStrings, gotIDs := r.Strings()
	assertSameStrings(t, wantStrings, wantIDs, gotStrings, gotIDs)
}
