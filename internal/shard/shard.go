package shard

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"iokast/internal/engine"
	"iokast/internal/kernel"
	"iokast/internal/obs"
	"iokast/internal/store"
	"iokast/internal/token"
)

// Options configure a Sharded corpus.
type Options struct {
	// Shards is the number of independent engine+store pairs; 0 means 1.
	// The count is pinned by the MANIFEST of a durable directory and cannot
	// change across reopens (resharding is a future, separate operation).
	Shards int
	// Seed keys the Route hash. Like the shard count, it is pinned by the
	// MANIFEST: ids are routed identically forever.
	Seed uint64
	// Engine configures every shard engine identically (kernel, workers,
	// sketch). Engine.Log must be nil; each shard's store attaches itself.
	Engine engine.Options
	// Store configures every shard's persistence (snapshot cadence, fsync
	// policy). Ignored by New (in-memory corpora have no stores).
	Store store.Options
	// Obs, when non-nil, registers per-shard telemetry on the registry:
	// engine/sketch/store families labelled shard="N", per-shard fan-out
	// latency histograms, and degraded/size gauges. Any Metrics already
	// set in Engine or Store are overridden by the labelled ones.
	Obs *obs.Registry
}

// loc places one global id inside its owner shard.
type loc struct {
	shard int
	local int
}

// Sharded is a hash-routed multi-shard corpus. Every trace lives in exactly
// one shard (chosen by Route over its global id), mutations touch only the
// owner shard (sub-batches of AddBatch run in parallel across shards), and
// similarity queries fan out to every shard in parallel and merge exactly.
// All methods are safe for concurrent use.
//
// Mutations are serialised globally (one at a time, though a batch's
// per-shard sub-batches and every kernel evaluation inside them run in
// parallel). That matches the single engine, whose write lock serialises
// mutations anyway, and it is what makes crash recovery tractable: at most
// the one in-flight mutation can be torn across shard WALs, so recovery
// only ever has to reconcile a single batch tail (see buildMapping).
type Sharded struct {
	n    int
	seed uint64
	dir  string // empty for in-memory corpora

	engines []*engine.Engine
	stores  []*store.Store // nil entries when in-memory

	ingest sync.Mutex // serialises Add/AddBatch/Remove, fixing the global order

	mu       sync.RWMutex
	locals   []loc   // global id -> owner shard and local id
	globals  [][]int // per shard: local id -> global id
	repaired int     // tombstone slots plugged while reconciling a torn batch

	fanoutSec []*obs.Histogram // per-shard fan-out latency; nil = no telemetry
}

// New returns an in-memory sharded corpus: engines only, no manifest, no
// durability.
func New(opt Options) (*Sharded, error) { return open("", opt) }

// Open recovers (or initialises) a durable sharded corpus from dir. The
// directory holds a MANIFEST pinning shard count, hash seed, and
// kernel/sketch config, plus one store subdirectory (WAL + snapshot chain)
// per shard. Every shard is recovered concurrently; a directory whose
// manifest disagrees with opt is refused. After recovery the global id
// mapping is rebuilt deterministically from the shards' id counts, rolling
// a torn cross-shard batch forward where sub-batches committed and plugging
// durable tombstone slots where they did not (see buildMapping).
func Open(dir string, opt Options) (*Sharded, error) {
	if dir == "" {
		return nil, fmt.Errorf("shard: empty directory (use New for an in-memory corpus)")
	}
	return open(dir, opt)
}

func open(dir string, opt Options) (*Sharded, error) {
	n := opt.Shards
	if n == 0 {
		n = 1
	}
	if n < 1 || n > maxShards {
		return nil, fmt.Errorf("shard: shard count %d out of range [1, %d]", n, maxShards)
	}
	if opt.Engine.Log != nil {
		return nil, fmt.Errorf("shard: Engine.Log must be nil (each shard's store attaches its own log)")
	}

	// A throwaway engine resolves the option defaults (nil kernel, zero
	// sketch dim) exactly the way every shard engine will, so the manifest
	// records the effective configuration, not the requested one.
	probe := engine.New(opt.Engine)
	man := manifest{shards: n, seed: opt.Seed, kernel: probe.Kernel().Name()}
	man.sketchDim, man.sketchSeed, man.sketch = probe.SketchConfig()

	// Per-shard option copies: with a registry attached, every shard's
	// engine, sketch index, and store get their own shard="N"-labelled
	// instruments. Reopening against the same registry is safe: the
	// registry's get-or-create hands back the existing counters and
	// histograms, and the sampled gauges in registerMetrics are
	// last-wins, re-binding their closures to the fresh engines.
	eopts := make([]engine.Options, n)
	sopts := make([]store.Options, n)
	for i := 0; i < n; i++ {
		eopts[i], sopts[i] = opt.Engine, opt.Store
		if opt.Obs != nil {
			labels := obs.Labels{"shard": strconv.Itoa(i)}
			eopts[i].Metrics = engine.NewMetrics(opt.Obs, labels)
			sopts[i].Metrics = store.NewMetrics(opt.Obs, labels)
		}
	}

	s := &Sharded{
		n: n, seed: opt.Seed, dir: dir,
		engines: make([]*engine.Engine, n),
		stores:  make([]*store.Store, n),
		globals: make([][]int, n),
	}
	if dir == "" {
		for i := range s.engines {
			s.engines[i] = engine.New(eopts[i])
		}
	} else {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		if err := loadOrCreateManifest(filepath.Join(dir, manifestName), man); err != nil {
			return nil, err
		}
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sub := filepath.Join(dir, ShardDir(i))
				s.engines[i], s.stores[i], errs[i] = store.Open(sub,
					func() *engine.Engine { return engine.New(eopts[i]) }, sopts[i])
			}(i)
		}
		wg.Wait()
		var firstErr error
		for i, err := range errs {
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", i, err)
			}
		}
		if firstErr != nil {
			s.closeStores()
			return nil, firstErr
		}
	}
	if err := s.buildMapping(); err != nil {
		s.closeStores()
		return nil, err
	}
	if opt.Obs != nil {
		s.registerMetrics(opt.Obs)
	}
	return s, nil
}

// registerMetrics registers the shard-level telemetry: per-shard fan-out
// latency histograms and per-shard health/size gauges sampled at scrape
// time. GaugeFunc re-registration is last-wins, so a reopen replaces the
// sampling closures with ones holding the new engine pointers instead of
// panicking or sampling a closed corpus.
func (s *Sharded) registerMetrics(reg *obs.Registry) {
	s.fanoutSec = make([]*obs.Histogram, s.n)
	for i := 0; i < s.n; i++ {
		labels := obs.Labels{"shard": strconv.Itoa(i)}
		s.fanoutSec[i] = reg.Histogram("iok_shard_fanout_seconds", "Per-shard similarity fan-out latency.", labels)
		eng := s.engines[i]
		reg.GaugeFunc("iok_shard_degraded", "1 when the shard's persistence carries a sticky error.", labels, func() float64 {
			if eng.Err() != nil {
				return 1
			}
			return 0
		})
		reg.GaugeFunc("iok_shard_traces", "Live traces owned by the shard.", labels, func() float64 {
			return float64(eng.Len())
		})
	}
}

// InternerSize returns the total number of distinct literals across the
// per-shard interner tables (the corpus-memory gauge of the sharded
// corpus; see engine.InternerSize).
func (s *Sharded) InternerSize() int {
	total := 0
	for _, e := range s.engines {
		total += e.InternerSize()
	}
	return total
}

// ShardDir names the store subdirectory of one shard inside a sharded data
// directory.
func ShardDir(i int) string { return fmt.Sprintf("shard-%03d", i) }

// filler is the string plugged (and immediately tombstoned) into a shard to
// occupy a local slot for a global id whose own sub-batch was lost in a
// crash. It only has to be a valid weighted string; it is never live, so no
// query can ever return it.
var filler = token.String{{Literal: token.LitRoot, Weight: 1}}

// maxRepair bounds the tombstone slots one recovery may plug. A torn batch
// leaves at most one batch worth of holes; a walk that wants orders of
// magnitude more is reconciling directories that were never one corpus.
const maxRepair = 1 << 20

// buildMapping rebuilds the global id mapping from the shards' id counts.
//
// Local ids within a shard are assigned in global order, so global id g
// lives at local slot |{g' < g : Route(g') == Route(g)}| of its shard: the
// whole mapping is determined by walking g upward and dealing each id to
// the next free slot of its owner. On a cleanly produced directory the walk
// consumes every shard's slots exactly.
//
// After a crash the shards may disagree by exactly the one in-flight
// mutation (mutations are serialised): a cross-shard AddBatch whose
// sub-batches committed in some shards but not others. The walk rolls the
// committed sub-batches forward (preserving an unacknowledged mutation is
// allowed; losing an acknowledged one is not, and acknowledged mutations
// are fully committed in every shard by definition). For a global id whose
// owner shard lost its sub-batch, the walk plugs the missing slot durably:
// a filler entry is added and immediately tombstoned through the shard's
// own WAL, so the id space stays dense, the mapping stays deterministic
// across every future reopen, and the id reads as removed — exactly like
// any other dead id. Repaired reports how many slots were plugged.
func (s *Sharded) buildMapping() error {
	counts := make([]int, s.n)
	remaining := 0
	for i, e := range s.engines {
		counts[i] = e.NextID()
		remaining += counts[i]
	}
	consumed := make([]int, s.n)
	for g := 0; remaining > 0; g++ {
		sh := Route(g, s.seed, s.n)
		if consumed[sh] < counts[sh] {
			s.locals = append(s.locals, loc{sh, consumed[sh]})
			s.globals[sh] = append(s.globals[sh], g)
			consumed[sh]++
			remaining--
			continue
		}
		if s.repaired >= maxRepair {
			return fmt.Errorf("shard: recovery needs more than %d plugged slots; directory is not one corpus", maxRepair)
		}
		id := s.engines[sh].Add(filler.Clone())
		if err := s.engines[sh].Remove(id); err != nil {
			return fmt.Errorf("shard %d: tombstoning plugged slot %d: %w", sh, id, err)
		}
		if err := s.engines[sh].Err(); err != nil {
			return fmt.Errorf("shard %d: persisting plugged slot %d: %w", sh, id, err)
		}
		counts[sh]++
		s.locals = append(s.locals, loc{sh, id})
		s.globals[sh] = append(s.globals[sh], g)
		consumed[sh]++
		s.repaired++
	}
	return nil
}

// --- mutations ------------------------------------------------------------

// Add inserts a weighted string and returns its global id. Ids are assigned
// sequentially and never reused; the entry lives only in its routed shard,
// so the insertion pays one kernel evaluation per entry of that shard — a
// 1/Shards fraction of the single-engine cost. Persistence failures surface
// through Err, exactly as on the single engine.
func (s *Sharded) Add(x token.String) int {
	s.ingest.Lock()
	defer s.ingest.Unlock()
	s.mu.Lock()
	g := len(s.locals)
	sh := Route(g, s.seed, s.n)
	local := len(s.globals[sh])
	s.locals = append(s.locals, loc{sh, local})
	s.globals[sh] = append(s.globals[sh], g)
	s.mu.Unlock()
	if got := s.engines[sh].Add(x); got != local {
		panic(fmt.Sprintf("shard: engine %d assigned local id %d, supervisor expected %d (shard mutated outside the supervisor)", sh, got, local))
	}
	return g
}

// AddBatch inserts m strings in one step and returns their global ids,
// which are consecutive. The batch is split by routing into per-shard
// sub-batches that are applied in parallel, each paying one WAL record and
// one fsync in its own shard — cross-shard ingest scales with the shard
// count. The returned error is the first per-shard persistence error; as
// with the single engine, the in-memory insertion has still happened.
func (s *Sharded) AddBatch(xs []token.String) ([]int, error) {
	m := len(xs)
	if m == 0 {
		return nil, nil
	}
	s.ingest.Lock()
	defer s.ingest.Unlock()
	subs := make([][]token.String, s.n)
	s.mu.Lock()
	first := len(s.locals)
	for t := 0; t < m; t++ {
		g := first + t
		sh := Route(g, s.seed, s.n)
		s.locals = append(s.locals, loc{sh, len(s.globals[sh])})
		s.globals[sh] = append(s.globals[sh], g)
		subs[sh] = append(subs[sh], xs[t])
	}
	s.mu.Unlock()

	firstLocal := make([]int, s.n)
	for sh := range firstLocal {
		firstLocal[sh] = s.engines[sh].NextID()
	}
	errs := make([]error, s.n)
	var wg sync.WaitGroup
	for sh := range subs {
		if len(subs[sh]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			ids, err := s.engines[sh].AddBatch(subs[sh])
			errs[sh] = err
			if len(ids) > 0 && ids[0] != firstLocal[sh] {
				panic(fmt.Sprintf("shard: engine %d batch started at local id %d, supervisor expected %d (shard mutated outside the supervisor)", sh, ids[0], firstLocal[sh]))
			}
		}(sh)
	}
	wg.Wait()

	ids := make([]int, m)
	for t := range ids {
		ids[t] = first + t
	}
	for _, err := range errs {
		if err != nil {
			return ids, err
		}
	}
	return ids, nil
}

// Remove deletes the entry with the given global id; the tombstone is
// durable in the owner shard's WAL.
func (s *Sharded) Remove(id int) error {
	s.ingest.Lock()
	defer s.ingest.Unlock()
	s.mu.RLock()
	if id < 0 || id >= len(s.locals) {
		s.mu.RUnlock()
		return fmt.Errorf("shard: no entry with id %d", id)
	}
	lc := s.locals[id]
	s.mu.RUnlock()
	if err := s.engines[lc.shard].Remove(lc.local); err != nil {
		return fmt.Errorf("shard: no entry with id %d", id)
	}
	return nil
}

// --- queries --------------------------------------------------------------

// exactRerank forces every shard's SimilarTrace onto its exact path (one
// kernel evaluation per live entry): any rerank >= the shard's corpus size
// does, and MaxInt always is.
const exactRerank = math.MaxInt

// resolve returns the stored string and location of a live global id.
func (s *Sharded) resolve(id int) (token.String, loc, error) {
	s.mu.RLock()
	if id < 0 || id >= len(s.locals) {
		s.mu.RUnlock()
		return nil, loc{}, fmt.Errorf("shard: no entry with id %d", id)
	}
	lc := s.locals[id]
	s.mu.RUnlock()
	x, ok := s.engines[lc.shard].StringAt(lc.local)
	if !ok {
		return nil, loc{}, fmt.Errorf("shard: no entry with id %d", id)
	}
	return x, lc, nil
}

// storedQuery resolves a global id and prepares the fan-out query from
// the owner engine's stored state — string, feature map, sketch vector,
// band signature — without recomputing any of it. This keeps by-id
// queries as cheap as on the single engine: the embedding was paid at
// ingest, never per query.
func (s *Sharded) storedQuery(id int) (*engine.TraceQuery, loc, error) {
	s.mu.RLock()
	if id < 0 || id >= len(s.locals) {
		s.mu.RUnlock()
		return nil, loc{}, fmt.Errorf("shard: no entry with id %d", id)
	}
	lc := s.locals[id]
	s.mu.RUnlock()
	tq, err := s.engines[lc.shard].PrepareStoredQuery(lc.local)
	if err != nil {
		return nil, loc{}, fmt.Errorf("shard: no entry with id %d", id)
	}
	return tq, lc, nil
}

// shardRerank resolves the caller's (k, rerank) into the per-shard
// shortlist width, so the rerank budget is global: a caller asking for R
// reranked candidates pays ~R kernel evaluations across the whole corpus,
// as on the single engine, not R per shard. Each shard still reranks at
// least k candidates — required for the exact-merge guarantee, since the
// global top-k can live entirely inside one shard. The engine's rerank
// conventions are preserved: negative resolves to the same default width
// a single engine would pick, 0 stays sketch-only, and any width covering
// the global corpus forces every shard onto its exact path.
func (s *Sharded) shardRerank(k, rerank int) int {
	if rerank < 0 {
		if k < 0 {
			return exactRerank
		}
		rerank = engine.DefaultRerank(k)
	}
	if rerank == 0 {
		return 0
	}
	if k < 0 || rerank >= s.Len() {
		return exactRerank
	}
	per := (rerank + s.n - 1) / s.n
	if per < k {
		per = k
	}
	return per
}

// prepareQuery builds the shared trace query once, on shard 0's engine.
// Every shard engine is built from the same Options, so the prepared
// sketch vector, band signature, and feature map are valid on all of them
// — the fan-out pays the embedding cost once, not once per shard.
func (s *Sharded) prepareQuery(x token.String) (*engine.TraceQuery, error) {
	return s.engines[0].PrepareTraceQuery(x)
}

// fanOut runs SimilarTracePrepared(tq, k, rerank) on every shard except
// skip (pass -1 to query all) in parallel, returning the per-shard results
// with local ids. The skipped slot is left nil for the caller to fill —
// by-id queries answer the owner shard from its cached Gram row instead of
// recomputing kernel values.
func (s *Sharded) fanOut(tq *engine.TraceQuery, k, rerank, skip int) ([][]engine.Neighbor, error) {
	res := make([][]engine.Neighbor, s.n)
	errs := make([]error, s.n)
	var wg sync.WaitGroup
	for sh := range s.engines {
		if sh == skip {
			continue
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			var t0 time.Time
			if s.fanoutSec != nil {
				t0 = time.Now() //iokvet:allow nondeterm(metric timing only: t0 feeds the fan-out latency histogram and never reaches query results)
			}
			res[sh], errs[sh] = s.engines[sh].SimilarTracePrepared(tq, k, rerank)
			if s.fanoutSec != nil {
				s.fanoutSec[sh].Observe(time.Since(t0)) //iokvet:allow nondeterm(metric timing only: observed duration feeds the latency histogram and never reaches query results)
			}
		}(sh)
	}
	wg.Wait()
	for sh, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", sh, err)
		}
	}
	return res, nil
}

// merge maps the per-shard results to global ids and concatenates them,
// unsorted, into one preallocated slice.
func (s *Sharded) merge(res [][]engine.Neighbor) []engine.Neighbor {
	total := 0
	for _, ns := range res {
		total += len(ns)
	}
	out := make([]engine.Neighbor, 0, total)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for sh, ns := range res {
		for _, nb := range ns {
			out = append(out, engine.Neighbor{ID: s.globals[sh][nb.ID], Similarity: nb.Similarity})
		}
	}
	return out
}

// Similar returns the k live entries most similar to the given global id,
// bit-identical to what a single engine over the same corpus would return
// (same ids, same float bits, same order). The owner shard answers from
// its cached Gram row — exactly like the single engine — while the other
// shards, which hold no kernel values against the query, recompute their
// rows on the exact path in parallel; because scores are pairwise, merging
// the per-shard top-k by (score desc, id asc) reproduces the global top-k
// exactly.
func (s *Sharded) Similar(id, k int) ([]engine.Neighbor, error) {
	tq, lc, err := s.storedQuery(id)
	if err != nil {
		return nil, err
	}
	res, err := s.fanOut(tq, k, exactRerank, lc.shard)
	if err != nil {
		return nil, err
	}
	if res[lc.shard], err = s.engines[lc.shard].Similar(lc.local, k); err != nil {
		return nil, err
	}
	merged := s.merge(res)
	sortNeighbors(merged)
	return truncate(merged, k), nil
}

// SimilarApprox is Similar answered from the shards' sketch indexes: each
// shard shortlists candidates by sketch score (through its ANN bands when
// enabled) and reranks them with exact kernel values, and the per-shard
// results merge like Similar. The rerank budget is global (see
// shardRerank): the result is exact over the union of the shortlists —
// identical to Similar whenever they cover the true top k, and always
// identical when rerank covers the corpus. rerank follows the engine's
// convention: negative for the default over-fetch, 0 for raw sketch
// scores. The owner shard answers from its cached Gram row and stored
// sketch; only the other shards evaluate kernels against the query.
func (s *Sharded) SimilarApprox(id, k, rerank int) ([]engine.Neighbor, error) {
	if _, _, enabled := s.SketchConfig(); !enabled {
		return nil, fmt.Errorf("shard: sketching disabled (Options.SketchDim < 0)")
	}
	tq, lc, err := s.storedQuery(id)
	if err != nil {
		return nil, err
	}
	per := s.shardRerank(k, rerank)
	res, err := s.fanOut(tq, k, per, lc.shard)
	if err != nil {
		return nil, err
	}
	if res[lc.shard], err = s.engines[lc.shard].SimilarApprox(lc.local, k, per); err != nil {
		return nil, err
	}
	merged := s.merge(res)
	sortNeighbors(merged)
	return truncate(merged, k), nil
}

// SimilarTrace answers query-by-trace without ingesting: the string is
// embedded once (sketch vector plus ANN signature, shared across the
// fan-out), compared against every shard in parallel, and the per-shard
// top-k merge exactly, as in Similar. rerank follows the engine's
// convention with a global budget (see shardRerank); with an exact rerank
// (>= the corpus size) the result is bit-identical to the single engine's.
func (s *Sharded) SimilarTrace(x token.String, k, rerank int) ([]engine.Neighbor, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("shard: empty query string")
	}
	tq, err := s.prepareQuery(x)
	if err != nil {
		return nil, err
	}
	res, err := s.fanOut(tq, k, s.shardRerank(k, rerank), -1)
	if err != nil {
		return nil, err
	}
	merged := s.merge(res)
	sortNeighbors(merged)
	return truncate(merged, k), nil
}

// sortNeighbors orders merged results by decreasing similarity with ties
// by ascending global id — engine.SortNeighbors, the one definition of the
// order engine.Similar produces, which is what makes the merged result
// comparable bit for bit. Within one shard, local id order is global id
// order (both are assigned in arrival order), so the per-shard truncations
// performed before the merge break ties identically.
func sortNeighbors(out []engine.Neighbor) { engine.SortNeighbors(out) }

func truncate(ns []engine.Neighbor, k int) []engine.Neighbor {
	if k >= 0 && k < len(ns) {
		ns = ns[:k]
	}
	return ns
}

// --- accessors ------------------------------------------------------------

// Shards returns the shard count.
func (s *Sharded) Shards() int { return s.n }

// Seed returns the routing hash seed.
func (s *Sharded) Seed() uint64 { return s.seed }

// Kernel returns the kernel every shard engine runs.
func (s *Sharded) Kernel() kernel.Kernel { return s.engines[0].Kernel() }

// SketchConfig reports the shared sketch configuration of the shards.
func (s *Sharded) SketchConfig() (dim int, seed uint64, enabled bool) {
	return s.engines[0].SketchConfig()
}

// ANNConfig reports the shared ANN banding configuration of the shards
// (every shard engine is built from the same Options, so one answer covers
// all of them).
func (s *Sharded) ANNConfig() (bands, rows int, enabled bool) {
	return s.engines[0].ANNConfig()
}

// Len returns the number of live entries across all shards.
func (s *Sharded) Len() int {
	total := 0
	for _, e := range s.engines {
		total += e.Len()
	}
	return total
}

// NextID returns the global id the next Add would assign.
func (s *Sharded) NextID() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.locals)
}

// Repaired returns how many tombstone slots recovery plugged while
// reconciling a torn cross-shard batch (0 after a clean open).
func (s *Sharded) Repaired() int { return s.repaired }

// Err returns the first persistence failure of any shard, or nil. Like
// engine.Err it is sticky: a non-nil value means some shard's in-memory
// state has diverged from its WAL.
func (s *Sharded) Err() error {
	for i, e := range s.engines {
		if err := e.Err(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Errs returns the per-shard sticky persistence errors (nil entries for
// healthy shards). The slice is freshly allocated.
func (s *Sharded) Errs() []error {
	errs := make([]error, s.n)
	for i, e := range s.engines {
		errs[i] = e.Err()
	}
	return errs
}

// Durable reports whether the corpus is backed by per-shard stores.
func (s *Sharded) Durable() bool { return s.stores[0] != nil }

// Stats returns the per-shard store statistics, or nil for an in-memory
// corpus.
func (s *Sharded) Stats() []store.Stats {
	if !s.Durable() {
		return nil
	}
	stats := make([]store.Stats, s.n)
	for i, st := range s.stores {
		stats[i] = st.Stats()
	}
	return stats
}

// StringAt returns a copy of the live corpus string with the given global
// id. ok is false for ids that were never assigned or have been removed —
// the global-id form of engine.StringAt.
func (s *Sharded) StringAt(id int) (token.String, bool) {
	x, _, err := s.resolve(id)
	if err != nil {
		return nil, false
	}
	return x, true
}

// Has reports whether the global id names a live entry, without copying the
// stored string — the global-id form of engine.Has.
func (s *Sharded) Has(id int) bool {
	s.mu.RLock()
	if id < 0 || id >= len(s.locals) {
		s.mu.RUnlock()
		return false
	}
	lc := s.locals[id]
	s.mu.RUnlock()
	return s.engines[lc.shard].Has(lc.local)
}

// Strings returns copies of the live corpus strings in global id order,
// with their global ids.
func (s *Sharded) Strings() ([]token.String, []int) {
	s.mu.RLock()
	locals := append([]loc(nil), s.locals...)
	s.mu.RUnlock()
	var xs []token.String
	var ids []int
	for g, lc := range locals {
		if x, ok := s.engines[lc.shard].StringAt(lc.local); ok {
			xs = append(xs, x)
			ids = append(ids, g)
		}
	}
	return xs, ids
}

// Snapshot checkpoints every shard's store now (concurrently), bounding
// replay work after a crash. It is a no-op for in-memory corpora.
func (s *Sharded) Snapshot() error {
	if !s.Durable() {
		return nil
	}
	errs := make([]error, s.n)
	var wg sync.WaitGroup
	for i, st := range s.stores {
		wg.Add(1)
		go func(i int, st *store.Store) {
			defer wg.Done()
			errs[i] = st.Snapshot()
		}(i, st)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Close checkpoints and closes every shard's store (concurrently). The
// corpus stays usable in memory; further mutations are not persisted. It is
// a no-op for in-memory corpora.
func (s *Sharded) Close() error {
	return s.closeStores()
}

func (s *Sharded) closeStores() error {
	errs := make([]error, s.n)
	var wg sync.WaitGroup
	for i, st := range s.stores {
		if st == nil {
			continue
		}
		wg.Add(1)
		go func(i int, st *store.Store) {
			defer wg.Done()
			errs[i] = st.Close()
		}(i, st)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: close: %w", i, err)
		}
	}
	return nil
}
