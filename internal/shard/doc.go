// Package shard scales the incremental Gram engine past one write lock,
// one Gram matrix, and one WAL: a Sharded corpus splits the id space
// across N fully independent engine+store pairs behind a single global
// API that matches engine.Engine's.
//
// # Routing
//
// Every trace id is owned by exactly one shard, chosen by Route — a pure
// seeded hash (the SplitMix64 finalizer) of the id, mod the shard count.
// The mapping depends only on (id, seed, shards), so an id can never move
// between shards; the MANIFEST of a durable directory pins seed and count
// so every reopen routes identically. Batch ingest is split into
// per-shard sub-batches applied in parallel — one WAL record and one
// fsync per shard — and the pairwise kernel work drops to N^2/(2*shards)
// because cross-shard pairs are never computed.
//
// # Fan-out queries
//
// Normalized similarity k(x,y)/sqrt(k(x,x)k(y,y)) is pairwise, so
// disjoint partitions merge losslessly: a query is embedded and prepared
// exactly once (engine.PrepareTraceQuery, or the owner shard's stored
// state for by-id queries), fanned out to every shard in parallel, and
// the per-shard top-k merged by (similarity desc, id asc). Exact queries
// and covering-rerank approximate queries are bit-identical to the
// single-engine answer — same ids, same float64 bits, same order — and
// the approximate path splits one global rerank budget across shards so
// the fleet evaluates about as many kernels as a single engine would.
//
// # Recovery
//
// Shards recover concurrently; the global id mapping is then re-derived
// by walking ids upward and dealing each to the next local slot of its
// owner shard. A kill -9 can tear at most the one in-flight batch across
// shard WALs; recovery rolls committed sub-batches forward and plugs
// durable tombstones for globals whose shard lost its part, so
// acknowledged mutations are never lost and every reopen derives the
// identical mapping.
//
// See docs/ARCHITECTURE.md for the locking model and the MANIFEST wire
// format.
package shard
