package kernel

import (
	"math"
	"testing"
	"testing/quick"

	"iokast/internal/linalg"
	"iokast/internal/token"
	"iokast/internal/xrand"
)

func randDataset(r *xrand.Rand, n int) []token.String {
	xs := make([]token.String, n)
	for i := range xs {
		xs[i] = randString(r, 15)
	}
	return xs
}

func TestGramSymmetricAndMatchesCompare(t *testing.T) {
	r := xrand.New(3)
	xs := randDataset(r, 9)
	k := &Blended{P: 3, Mode: WeightSum}
	g := Gram(k, xs)
	for i := 0; i < len(xs); i++ {
		for j := 0; j < len(xs); j++ {
			want := k.Compare(xs[i], xs[j])
			if math.Abs(g.At(i, j)-want) > 1e-9 {
				t.Fatalf("g[%d][%d] = %v, want %v", i, j, g.At(i, j), want)
			}
			if g.At(i, j) != g.At(j, i) {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

// nonFeaturer hides the featurer fast path so Gram's generic branch is
// exercised too.
type nonFeaturer struct{ k Kernel }

func (n nonFeaturer) Name() string                      { return "wrapped:" + n.k.Name() }
func (n nonFeaturer) Compare(a, b token.String) float64 { return n.k.Compare(a, b) }

func TestGramGenericPathMatchesFeaturePath(t *testing.T) {
	r := xrand.New(4)
	xs := randDataset(r, 7)
	k := &Spectrum{K: 2, Mode: WeightSum}
	fast := Gram(k, xs)
	slow := Gram(nonFeaturer{k}, xs)
	if fast.MaxAbsDiff(slow) > 1e-9 {
		t.Fatal("feature-cached Gram differs from generic Gram")
	}
}

func TestGramEmpty(t *testing.T) {
	g := Gram(&Spectrum{K: 1}, nil)
	if g.Rows != 0 || g.Cols != 0 {
		t.Fatal("empty Gram wrong shape")
	}
}

// Property: Gram matrices of feature-map kernels are PSD (within tolerance).
func TestQuickGramPSD(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		xs := randDataset(r, 6)
		g := Gram(&Blended{P: 3, Mode: WeightSum}, xs)
		min, err := linalg.MinEigenvalue(g)
		if err != nil {
			return false
		}
		return min > -1e-6*(1+g.FrobeniusNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeCosine(t *testing.T) {
	g := linalg.FromRows([][]float64{
		{4, 2, 0},
		{2, 9, 3},
		{0, 3, 1},
	})
	n := NormalizeCosine(g)
	for i := 0; i < 3; i++ {
		if math.Abs(n.At(i, i)-1) > 1e-12 {
			t.Fatalf("diagonal not 1: %v", n.At(i, i))
		}
	}
	if math.Abs(n.At(0, 1)-2.0/6.0) > 1e-12 {
		t.Fatalf("n[0][1] = %v", n.At(0, 1))
	}
	if math.Abs(n.At(1, 2)-3.0/3.0) > 1e-12 {
		t.Fatalf("n[1][2] = %v", n.At(1, 2))
	}
}

func TestNormalizeCosineZeroDiagonal(t *testing.T) {
	g := linalg.FromRows([][]float64{{0, 1}, {1, 4}})
	n := NormalizeCosine(g)
	if n.At(0, 0) != 0 || n.At(0, 1) != 0 || n.At(1, 0) != 0 {
		t.Fatalf("degenerate row not zeroed:\n%v", n)
	}
	if n.At(1, 1) != 1 {
		t.Fatal("healthy diagonal lost")
	}
}

func TestPSDRepair(t *testing.T) {
	g := linalg.FromRows([][]float64{{0, 1}, {1, 0}}) // eigenvalues +-1
	fixed, clipped, err := PSDRepair(g)
	if err != nil {
		t.Fatal(err)
	}
	if clipped != 1 {
		t.Fatalf("clipped = %d", clipped)
	}
	min, _ := linalg.MinEigenvalue(fixed)
	if min < -1e-10 {
		t.Fatalf("not repaired: %v", min)
	}
}

func TestCenterRowsSumToZero(t *testing.T) {
	r := xrand.New(8)
	xs := randDataset(r, 8)
	g := Gram(&Blended{P: 2, Mode: WeightSum}, xs)
	c := Center(g)
	for i := 0; i < c.Rows; i++ {
		var s float64
		for j := 0; j < c.Cols; j++ {
			s += c.At(i, j)
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("row %d sums to %v after centring", i, s)
		}
	}
	if !c.IsSymmetric(1e-9) {
		t.Fatal("centred matrix not symmetric")
	}
}

func TestCenterEmpty(t *testing.T) {
	c := Center(linalg.NewMatrix(0, 0))
	if c.Rows != 0 {
		t.Fatal("empty centring wrong")
	}
}

func TestKernelDistance(t *testing.T) {
	g := linalg.FromRows([][]float64{
		{1, 0.5},
		{0.5, 1},
	})
	d := KernelDistance(g)
	if d.At(0, 0) != 0 || d.At(1, 1) != 0 {
		t.Fatal("self-distance nonzero")
	}
	want := math.Sqrt(1 + 1 - 2*0.5)
	if math.Abs(d.At(0, 1)-want) > 1e-12 {
		t.Fatalf("d[0][1] = %v, want %v", d.At(0, 1), want)
	}
	if d.At(0, 1) != d.At(1, 0) {
		t.Fatal("distance asymmetric")
	}
}

func TestKernelDistanceClampsNegative(t *testing.T) {
	// Indefinite similarity can make k_ii + k_jj - 2k_ij negative; distance
	// must clamp to 0 rather than produce NaN.
	g := linalg.FromRows([][]float64{{0, 1}, {1, 0}})
	d := KernelDistance(g)
	for _, v := range d.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN in distance matrix")
		}
	}
}

// Property: kernel distance from a cosine-normalised PSD matrix satisfies
// the triangle inequality.
func TestQuickDistanceTriangle(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		xs := randDataset(r, 5)
		g := Gram(&Blended{P: 3, Mode: WeightSum}, xs)
		d := KernelDistance(NormalizeCosine(g))
		n := d.Rows
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if d.At(i, j) > d.At(i, k)+d.At(k, j)+1e-6 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorKernels(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	if (Linear{}).Compare(a, b) != 11 {
		t.Fatal("linear wrong")
	}
	p := Polynomial{Degree: 2, C: 1}
	if p.Compare(a, b) != 144 {
		t.Fatalf("poly = %v", p.Compare(a, b))
	}
	g := Gaussian{Sigma: 1}
	if math.Abs(g.Compare(a, a)-1) > 1e-12 {
		t.Fatal("gaussian self != 1")
	}
	if g.Compare(a, b) >= 1 || g.Compare(a, b) <= 0 {
		t.Fatal("gaussian out of (0,1)")
	}
}

func TestVectorGram(t *testing.T) {
	xs := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	g := VectorGram(Linear{}, xs)
	want := linalg.FromRows([][]float64{
		{1, 0, 1},
		{0, 1, 1},
		{1, 1, 2},
	})
	if g.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("VectorGram:\n%v", g)
	}
}

func TestGaussianPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gaussian{Sigma: 1}.Compare([]float64{1}, []float64{1, 2})
}
