package kernel

import (
	"fmt"
	"strings"

	"iokast/internal/token"
)

// featureSeparator joins token literals into feature-map keys. It cannot
// appear in literals (token.String.Validate rejects whitespace, and \x1f is
// a control character no literal contains).
const featureSeparator = "\x1f"

// Spectrum is the k-Spectrum Kernel over weighted token strings: features
// are the contiguous substrings of exactly K tokens ("the k-spectrum kernel
// only counts sub-strings of length k").
//
// CutWeight, when >= 2, drops occurrences whose weight (sum of spanned
// token weights) is below the cut — the same occurrence filter the paper
// parameterises its evaluation with. Mode selects weighted or classical
// counting.
type Spectrum struct {
	K         int
	Mode      ValueMode
	CutWeight int
}

// Name implements Kernel.
func (s *Spectrum) Name() string {
	return fmt.Sprintf("spectrum(k=%d,%s,cut=%d)", s.K, s.Mode, s.CutWeight)
}

// Compare implements Kernel.
func (s *Spectrum) Compare(a, b token.String) float64 {
	return dotFeatures(s.features(a), s.features(b))
}

func (s *Spectrum) features(x token.String) map[string]float64 {
	f := make(map[string]float64)
	if s.K <= 0 || len(x) < s.K {
		return f
	}
	addWindowFeatures(f, x, s.K, s.K, s.Mode, s.CutWeight, 1)
	return f
}

// Blended is the Blended Spectrum Kernel: features are all contiguous
// substrings of length <= P ("the k-blended spectrum kernel only counts
// sub-strings which length are less or equal to a given number k").
//
// Lambda is the standard per-length decay: an occurrence of length l
// contributes with an extra factor Lambda^l. Lambda = 1 (the default used
// in the evaluation) disables decay. CutWeight and Mode are as in Spectrum.
type Blended struct {
	P         int
	Mode      ValueMode
	CutWeight int
	Lambda    float64
}

// Name implements Kernel.
func (b *Blended) Name() string {
	return fmt.Sprintf("blended(p=%d,%s,cut=%d,lambda=%g)", b.P, b.Mode, b.CutWeight, b.lambda())
}

func (b *Blended) lambda() float64 {
	if b.Lambda == 0 {
		return 1
	}
	return b.Lambda
}

// Compare implements Kernel.
func (b *Blended) Compare(a, x token.String) float64 {
	return dotFeatures(b.features(a), b.features(x))
}

func (b *Blended) features(x token.String) map[string]float64 {
	f := make(map[string]float64)
	if b.P <= 0 {
		return f
	}
	addWindowFeatures(f, x, 1, b.P, b.Mode, b.CutWeight, b.lambda())
	return f
}

// addWindowFeatures accumulates every substring of length in [minLen,
// maxLen] into the feature map. An occurrence of weight w contributes
// lambda^len * w (WeightSum) or lambda^len (Count); occurrences with
// w < cutWeight are skipped when cutWeight >= 2.
func addWindowFeatures(f map[string]float64, x token.String, minLen, maxLen int, mode ValueMode, cutWeight int, lambda float64) {
	n := len(x)
	if maxLen > n {
		maxLen = n
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.Reset()
		weight := 0
		decay := 1.0
		for l := 1; i+l <= n && l <= maxLen; l++ {
			tok := x[i+l-1]
			if l > 1 {
				sb.WriteString(featureSeparator)
			}
			sb.WriteString(tok.Literal)
			weight += tok.Weight
			decay *= lambda
			if l < minLen {
				continue
			}
			if cutWeight >= 2 && weight < cutWeight {
				continue
			}
			key := sb.String()
			switch mode {
			case Count:
				f[key] += decay
			default:
				f[key] += decay * float64(weight)
			}
		}
	}
}
