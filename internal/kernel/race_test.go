package kernel

import (
	"sync"
	"testing"

	"iokast/internal/token"
)

// Race-oriented coverage for the parallel machinery. These tests are most
// meaningful under `go test -race`, which the CI workflow runs.

// TestParallelForRace checks every index is visited exactly once for a
// range of worker counts, including workers > n and the serial fallback.
func TestParallelForRace(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		visits := make([]int, n)
		ParallelFor(n, workers, func(i int) { visits[i]++ })
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
	// n = 0 must not deadlock or spawn anything.
	ParallelFor(0, 4, func(int) { t.Fatal("fn called for empty range") })
}

// TestGramConcurrentSameKernel runs Gram concurrently on one shared kernel
// value, which is how the engine and any server use it: the featurer fast
// path must not share mutable per-call state across goroutines.
func TestGramConcurrentSameKernel(t *testing.T) {
	xs := make([]token.String, 12)
	for i := range xs {
		xs[i] = token.String{
			{Literal: "a", Weight: i + 1},
			{Literal: "b", Weight: 2*i + 1},
			{Literal: "a", Weight: 3},
		}
	}
	kernels := []Kernel{
		&Spectrum{K: 2},
		&Blended{P: 3, CutWeight: 2},
		Normalized{K: &Spectrum{K: 1}},
	}
	for _, k := range kernels {
		k := k
		want := Gram(k, xs)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got := GramWorkers(k, xs, 3)
				if d := got.MaxAbsDiff(want); d != 0 {
					t.Errorf("%s: concurrent Gram drifted by %g", k.Name(), d)
				}
			}()
		}
		wg.Wait()
	}
}

// TestFeaturesFastPathMatchesCompare pins the featurer fast path (cached
// feature maps + DotFeatures) to the kernel's own Compare.
func TestFeaturesFastPathMatchesCompare(t *testing.T) {
	a := token.String{{Literal: "x", Weight: 4}, {Literal: "y", Weight: 2}, {Literal: "x", Weight: 4}}
	b := token.String{{Literal: "y", Weight: 3}, {Literal: "x", Weight: 5}}
	for _, k := range []Kernel{&Spectrum{K: 1}, &Spectrum{K: 2}, &Blended{P: 3}} {
		fa, ok := Features(k, a)
		if !ok {
			t.Fatalf("%s does not expose features", k.Name())
		}
		fb, _ := Features(k, b)
		if got, want := DotFeatures(fa, fb), k.Compare(a, b); got != want {
			t.Errorf("%s: DotFeatures = %g, Compare = %g", k.Name(), got, want)
		}
	}
	if _, ok := Features(Normalized{K: &Spectrum{K: 1}}, a); ok {
		t.Error("Normalized unexpectedly exposes features")
	}
}
