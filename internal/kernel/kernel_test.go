package kernel

import (
	"math"
	"testing"
	"testing/quick"

	"iokast/internal/token"
	"iokast/internal/xrand"
)

// ws builds a weighted string from literal/weight pairs.
func ws(pairs ...any) token.String {
	var s token.String
	for i := 0; i < len(pairs); i += 2 {
		s = append(s, token.Token{Literal: pairs[i].(string), Weight: pairs[i+1].(int)})
	}
	return s
}

func randString(r *xrand.Rand, maxLen int) token.String {
	lits := []string{"a", "b", "c", "d", "read[8]", "write[8]"}
	n := r.IntRange(0, maxLen)
	s := make(token.String, n)
	for i := range s {
		s[i] = token.Token{Literal: xrand.Pick(r, lits), Weight: r.IntRange(1, 9)}
	}
	return s
}

func TestSpectrumExactLengthOnly(t *testing.T) {
	// a b shared as 2-gram; 1-grams must not contribute for K=2.
	a := ws("a", 1, "b", 1, "x", 1)
	b := ws("a", 1, "b", 1, "y", 1)
	k := &Spectrum{K: 2, Mode: Count}
	// Shared 2-grams: only "a b" (x/y differ). One occurrence each: 1*1.
	if got := k.Compare(a, b); got != 1 {
		t.Fatalf("Compare = %v, want 1", got)
	}
}

func TestSpectrumCountsMultipleOccurrences(t *testing.T) {
	a := ws("a", 1, "b", 1, "a", 1, "b", 1) // "a b" x2 (plus "b a" x1)
	b := ws("a", 1, "b", 1)                 // "a b" x1
	k := &Spectrum{K: 2, Mode: Count}
	if got := k.Compare(a, b); got != 2 {
		t.Fatalf("Compare = %v, want 2", got)
	}
}

func TestSpectrumWeightSum(t *testing.T) {
	a := ws("a", 3, "b", 4) // occurrence weight 7
	b := ws("a", 1, "b", 2) // occurrence weight 3
	k := &Spectrum{K: 2, Mode: WeightSum}
	if got := k.Compare(a, b); got != 21 {
		t.Fatalf("Compare = %v, want 21", got)
	}
}

func TestSpectrumCutWeightFiltersOccurrences(t *testing.T) {
	a := ws("a", 1, "b", 1) // occurrence weight 2
	b := ws("a", 5, "b", 5) // occurrence weight 10
	k := &Spectrum{K: 2, Mode: WeightSum, CutWeight: 4}
	// a's only occurrence (weight 2 < 4) is filtered: kernel 0.
	if got := k.Compare(a, b); got != 0 {
		t.Fatalf("Compare = %v, want 0", got)
	}
}

func TestSpectrumDegenerateInputs(t *testing.T) {
	k := &Spectrum{K: 3, Mode: Count}
	if k.Compare(nil, nil) != 0 {
		t.Fatal("nil strings must give 0")
	}
	if k.Compare(ws("a", 1), ws("a", 1)) != 0 {
		t.Fatal("strings shorter than K must give 0")
	}
	if (&Spectrum{K: 0}).Compare(ws("a", 1), ws("a", 1)) != 0 {
		t.Fatal("K=0 must give 0")
	}
}

func TestBlendedIncludesAllLengths(t *testing.T) {
	a := ws("a", 1, "b", 1)
	b := ws("a", 1, "b", 1)
	k := &Blended{P: 2, Mode: Count}
	// Shared: "a" (1x1), "b" (1x1), "a b" (1x1) = 3.
	if got := k.Compare(a, b); got != 3 {
		t.Fatalf("Compare = %v, want 3", got)
	}
}

func TestBlendedLambdaDecay(t *testing.T) {
	a := ws("a", 1, "b", 1)
	k := &Blended{P: 2, Mode: Count, Lambda: 0.5}
	// Features of a: "a" (0.5), "b" (0.5), "a b" (0.25).
	// Self kernel: 0.25 + 0.25 + 0.0625 = 0.5625.
	if got := k.Compare(a, a); math.Abs(got-0.5625) > 1e-12 {
		t.Fatalf("Compare = %v, want 0.5625", got)
	}
}

func TestBlendedRespectsP(t *testing.T) {
	a := ws("a", 1, "b", 1, "c", 1)
	k1 := &Blended{P: 1, Mode: Count}
	// Only unigrams: 3 shared singletons.
	if got := k1.Compare(a, a); got != 3 {
		t.Fatalf("P=1 self = %v, want 3", got)
	}
	k3 := &Blended{P: 3, Mode: Count}
	// 3 unigrams + 2 bigrams + 1 trigram = 6.
	if got := k3.Compare(a, a); got != 6 {
		t.Fatalf("P=3 self = %v, want 6", got)
	}
}

func TestBagOfTokens(t *testing.T) {
	a := ws("x", 2, "y", 3, "x", 5) // x: 7, y: 3
	b := ws("x", 1, "z", 9)         // x: 1
	k := &BagOfTokens{Mode: WeightSum}
	if got := k.Compare(a, b); got != 7 {
		t.Fatalf("Compare = %v, want 7", got)
	}
	kc := &BagOfTokens{Mode: Count}
	if got := kc.Compare(a, b); got != 2 { // x count 2 * 1
		t.Fatalf("count Compare = %v, want 2", got)
	}
}

func TestBagOfTokensEqualsSpectrum1(t *testing.T) {
	r := xrand.New(5)
	for trial := 0; trial < 50; trial++ {
		a, b := randString(r, 12), randString(r, 12)
		bt := (&BagOfTokens{Mode: WeightSum}).Compare(a, b)
		sp := (&Spectrum{K: 1, Mode: WeightSum}).Compare(a, b)
		if math.Abs(bt-sp) > 1e-9 {
			t.Fatalf("bagoftokens %v != spectrum(1) %v", bt, sp)
		}
	}
}

func TestBagOfChars(t *testing.T) {
	a := ws("ab", 1)
	b := ws("bc", 1)
	k := &BagOfChars{Mode: Count}
	// Shared char: "b" only -> 1*1.
	if got := k.Compare(a, b); got != 1 {
		t.Fatalf("Compare = %v, want 1", got)
	}
}

func TestNormalizedSelfIsOne(t *testing.T) {
	a := ws("a", 2, "b", 3)
	n := Normalized{K: &Blended{P: 3, Mode: WeightSum}}
	if got := n.Compare(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("normalized self = %v", got)
	}
}

func TestNormalizedBounds(t *testing.T) {
	r := xrand.New(77)
	n := Normalized{K: &Blended{P: 4, Mode: WeightSum}}
	for trial := 0; trial < 100; trial++ {
		a, b := randString(r, 15), randString(r, 15)
		v := n.Compare(a, b)
		if v < -1e-12 || v > 1+1e-12 {
			t.Fatalf("normalized value %v out of [0,1]", v)
		}
	}
}

func TestNormalizedZeroSelf(t *testing.T) {
	n := Normalized{K: &Spectrum{K: 2, Mode: Count}}
	if got := n.Compare(ws("a", 1), ws("a", 1)); got != 0 {
		t.Fatalf("degenerate normalized = %v, want 0", got)
	}
}

// Property: every string kernel here is symmetric.
func TestQuickSymmetry(t *testing.T) {
	kernels := []Kernel{
		&Spectrum{K: 2, Mode: WeightSum},
		&Spectrum{K: 3, Mode: Count, CutWeight: 4},
		&Blended{P: 4, Mode: WeightSum, CutWeight: 2},
		&Blended{P: 3, Mode: Count, Lambda: 0.7},
		&BagOfTokens{Mode: WeightSum},
		&BagOfChars{Mode: Count},
		Normalized{K: &Blended{P: 3, Mode: WeightSum}},
	}
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		a, b := randString(r, 20), randString(r, 20)
		for _, k := range kernels {
			if math.Abs(k.Compare(a, b)-k.Compare(b, a)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cauchy-Schwarz holds for feature-map kernels:
// k(a,b)^2 <= k(a,a) k(b,b).
func TestQuickCauchySchwarz(t *testing.T) {
	kernels := []Kernel{
		&Spectrum{K: 2, Mode: WeightSum},
		&Blended{P: 4, Mode: WeightSum},
		&BagOfTokens{Mode: Count},
	}
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		a, b := randString(r, 20), randString(r, 20)
		for _, k := range kernels {
			ab := k.Compare(a, b)
			if ab*ab > k.Compare(a, a)*k.Compare(b, b)+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelNames(t *testing.T) {
	named := []Kernel{
		&Spectrum{K: 2}, &Blended{P: 3}, &BagOfTokens{}, &BagOfChars{},
		Normalized{K: &Spectrum{K: 1}},
	}
	seen := map[string]bool{}
	for _, k := range named {
		n := k.Name()
		if n == "" || seen[n] {
			t.Fatalf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestValueModeString(t *testing.T) {
	if WeightSum.String() != "weightsum" || Count.String() != "count" {
		t.Fatal("mode names wrong")
	}
	if ValueMode(9).String() != "unknown" {
		t.Fatal("unknown mode name wrong")
	}
}
