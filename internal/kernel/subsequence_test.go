package kernel

import (
	"math"
	"testing"
	"testing/quick"

	"iokast/internal/token"
	"iokast/internal/xrand"
)

// naiveSubsequence enumerates all length-p subsequences explicitly — an
// executable specification for small inputs.
func naiveSubsequence(a, b token.String, p int, lambda float64, weighted bool) float64 {
	type occ struct {
		lits   string
		span   int
		weight float64
	}
	enumerate := func(x token.String) []occ {
		var out []occ
		idx := make([]int, p)
		var rec func(start, depth int)
		rec = func(start, depth int) {
			if depth == p {
				lits := ""
				weight := 1.0
				for _, i := range idx {
					lits += "\x1f" + x[i].Literal
					if weighted {
						weight *= float64(x[i].Weight)
					}
				}
				out = append(out, occ{lits: lits, span: idx[p-1] - idx[0] + 1, weight: weight})
				return
			}
			for i := start; i < len(x); i++ {
				idx[depth] = i
				rec(i+1, depth+1)
			}
		}
		if len(x) >= p {
			rec(0, 0)
		}
		return out
	}
	var sum float64
	for _, oa := range enumerate(a) {
		for _, ob := range enumerate(b) {
			if oa.lits == ob.lits {
				sum += math.Pow(lambda, float64(oa.span+ob.span)) * oa.weight * ob.weight
			}
		}
	}
	return sum
}

func TestSubsequenceKnownValue(t *testing.T) {
	// Classic "cat"/"cart" example with p=2, lambda=l:
	// shared 2-subsequences: c-a (spans 2,2), c-t (3,4), a-t (2,3)
	// k = l^4 + l^7 + l^5.
	toks := func(s string) token.String {
		out := make(token.String, len(s))
		for i, c := range s {
			out[i] = token.Token{Literal: string(c), Weight: 1}
		}
		return out
	}
	lam := 0.5
	k := &Subsequence{P: 2, Lambda: lam}
	want := math.Pow(lam, 4) + math.Pow(lam, 7) + math.Pow(lam, 5)
	got := k.Compare(toks("cat"), toks("cart"))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("k(cat,cart) = %v, want %v", got, want)
	}
}

func TestSubsequenceDegenerate(t *testing.T) {
	k := &Subsequence{P: 3, Lambda: 0.5}
	if k.Compare(nil, nil) != 0 {
		t.Fatal("empty strings")
	}
	if k.Compare(ws("a", 1), ws("a", 1)) != 0 {
		t.Fatal("strings shorter than P")
	}
	if (&Subsequence{P: 0}).Compare(ws("a", 1), ws("a", 1)) != 0 {
		t.Fatal("P=0")
	}
}

func TestSubsequenceDefaultLambda(t *testing.T) {
	k := &Subsequence{P: 1}
	if k.lambda() != 0.5 {
		t.Fatalf("default lambda %v", k.lambda())
	}
	if k.Name() == "" {
		t.Fatal("empty name")
	}
}

// Property: the DP agrees with explicit subsequence enumeration.
func TestQuickSubsequenceMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		a := randString(r, 7)
		b := randString(r, 7)
		for _, p := range []int{1, 2, 3} {
			for _, weighted := range []bool{false, true} {
				k := &Subsequence{P: p, Lambda: 0.7, Weighted: weighted}
				got := k.Compare(a, b)
				want := naiveSubsequence(a, b, p, 0.7, weighted)
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Logf("seed=%d p=%d weighted=%v got=%v want=%v\na=%s\nb=%s",
						seed, p, weighted, got, want, a.Format(), b.Format())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: symmetry and Cauchy-Schwarz (it is a valid PSD kernel).
func TestQuickSubsequencePSDProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		a := randString(r, 10)
		b := randString(r, 10)
		k := &Subsequence{P: 2, Lambda: 0.6}
		ab, ba := k.Compare(a, b), k.Compare(b, a)
		if math.Abs(ab-ba) > 1e-9 {
			return false
		}
		return ab*ab <= k.Compare(a, a)*k.Compare(b, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsequenceGapPenalty(t *testing.T) {
	// The same subsequence with a gap must score less than contiguous.
	contiguous := ws("x", 1, "y", 1)
	gapped := ws("x", 1, "z", 1, "y", 1)
	k := &Subsequence{P: 2, Lambda: 0.5}
	if k.Compare(contiguous, contiguous) <= k.Compare(contiguous, gapped) {
		t.Fatal("gap not penalised")
	}
}
