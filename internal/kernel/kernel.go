// Package kernel defines the kernel-function interface used throughout the
// project and implements the baseline string kernels the paper compares
// against (§2.2/§4.3): the k-Spectrum Kernel (Leslie et al. 2002), the
// Blended Spectrum Kernel (Shawe-Taylor & Cristianini 2004), and the
// bag-of-characters / bag-of-words kernels, all adapted to weighted token
// strings. It also provides Gram-matrix computation, cosine normalisation,
// feature-space centring, and the positive-semidefinite repair step the
// paper applies before Kernel PCA.
//
// The paper's own contribution, the Kast Spectrum Kernel, lives in
// internal/core and implements the same Kernel interface.
package kernel

import (
	"math"
	"sort"

	"iokast/internal/token"
)

// Kernel is a similarity function over weighted strings. Implementations
// must be symmetric: Compare(a, b) == Compare(b, a).
type Kernel interface {
	// Name identifies the kernel (and its parameters) for reports.
	Name() string
	// Compare returns the kernel value k(a, b).
	Compare(a, b token.String) float64
}

// ValueMode selects how a feature occurrence contributes to the feature
// value.
type ValueMode int

const (
	// WeightSum adds the occurrence weight (the sum of the weights of the
	// tokens it spans). This is the adaptation used to compare baselines
	// with the Kast kernel on weighted strings.
	WeightSum ValueMode = iota
	// Count adds 1 per occurrence — the classical unweighted definition.
	Count
)

// String returns the mode name.
func (m ValueMode) String() string {
	switch m {
	case WeightSum:
		return "weightsum"
	case Count:
		return "count"
	}
	return "unknown"
}

// Normalized wraps a kernel with cosine normalisation:
// k'(a,b) = k(a,b) / sqrt(k(a,a) * k(b,b)), with 0 where either self-value
// is 0. Self-similarity of any non-degenerate string becomes exactly 1.
type Normalized struct {
	K Kernel
}

// Name implements Kernel.
func (n Normalized) Name() string { return n.K.Name() + "+cosine" }

// Compare implements Kernel.
func (n Normalized) Compare(a, b token.String) float64 {
	kab := n.K.Compare(a, b)
	if kab == 0 {
		return 0
	}
	kaa := n.K.Compare(a, a)
	kbb := n.K.Compare(b, b)
	if kaa <= 0 || kbb <= 0 {
		return 0
	}
	return kab / math.Sqrt(kaa*kbb)
}

// featurer is implemented by kernels whose Compare is an inner product of a
// per-string feature map; Gram uses it to cache feature maps and avoid
// recomputing them for every pair.
type featurer interface {
	features(x token.String) map[string]float64
}

// Features returns k's feature map for x when k's Compare is an inner
// product of per-string feature maps (the baseline kernels in this
// package), and ok=false otherwise. Callers that hold strings across many
// Compare calls — kernel.Gram internally, and the incremental engine — use
// it to compute each string's map once and reduce every later kernel
// evaluation to a sparse dot product (DotFeatures).
func Features(k Kernel, x token.String) (feats map[string]float64, ok bool) {
	f, ok := k.(featurer)
	if !ok {
		return nil, false
	}
	return f.features(x), true
}

// DotFeatures computes the kernel value from two feature maps obtained via
// Features.
func DotFeatures(fa, fb map[string]float64) float64 { return dotFeatures(fa, fb) }

// dotFeatures computes the sparse inner product of two feature maps,
// iterating over the smaller one. The per-term products are collected and
// sorted before summation: float addition is not associative, so summing in
// map-iteration order would make the result vary run to run. Summing the
// sorted multiset is order-independent (and, ascending, slightly more
// accurate) at O(m log m) on the intersection only.
func dotFeatures(fa, fb map[string]float64) float64 {
	if len(fb) < len(fa) {
		fa, fb = fb, fa
	}
	products := make([]float64, 0, len(fa))
	for k, va := range fa {
		if vb, ok := fb[k]; ok {
			products = append(products, va*vb)
		}
	}
	sort.Float64s(products)
	var s float64
	for _, p := range products {
		s += p
	}
	return s
}
