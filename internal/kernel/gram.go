package kernel

import (
	"math"
	"runtime"
	"sync"

	"iokast/internal/linalg"
	"iokast/internal/token"
)

// Gram computes the kernel (similarity) matrix over the examples. The
// matrix is symmetric by construction; the diagonal holds self-similarities.
//
// Pairs are distributed over GOMAXPROCS workers. For kernels whose value is
// an inner product of per-string feature maps (the baselines in this
// package), feature maps are computed once per string and reused for every
// pair, which turns the quadratic pair loop into cheap sparse dot products.
func Gram(k Kernel, xs []token.String) *linalg.Matrix {
	n := len(xs)
	g := linalg.NewMatrix(n, n)

	if f, ok := k.(featurer); ok {
		feats := make([]map[string]float64, n)
		parallelFor(n, func(i int) { feats[i] = f.features(xs[i]) })
		parallelFor(n, func(i int) {
			for j := i; j < n; j++ {
				v := dotFeatures(feats[i], feats[j])
				g.Set(i, j, v)
				g.Set(j, i, v)
			}
		})
		return g
	}

	parallelFor(n, func(i int) {
		for j := i; j < n; j++ {
			v := k.Compare(xs[i], xs[j])
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	})
	return g
}

// parallelFor runs fn(i) for i in [0, n) on up to GOMAXPROCS goroutines.
// The callers above are race-free: every matrix cell (i, j) and its mirror
// (j, i) are written exactly once, by the iteration i = min(i, j), and no
// cell is read until all iterations complete.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// NormalizeCosine rescales a Gram matrix so the diagonal becomes 1:
// g'[i][j] = g[i][j] / sqrt(g[i][i] g[j][j]). Rows with non-positive
// self-similarity are zeroed (their diagonal included), since no meaningful
// normalisation exists for them.
func NormalizeCosine(g *linalg.Matrix) *linalg.Matrix {
	n := g.Rows
	out := linalg.NewMatrix(n, n)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = g.At(i, i)
	}
	for i := 0; i < n; i++ {
		if d[i] <= 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if d[j] <= 0 {
				continue
			}
			out.Set(i, j, g.At(i, j)/math.Sqrt(d[i]*d[j]))
		}
	}
	return out
}

// PSDRepair clips negative eigenvalues to zero and rebuilds the matrix —
// the paper's fix for indefinite similarity matrices. It returns the
// repaired matrix and the number of clipped eigenvalues.
func PSDRepair(g *linalg.Matrix) (*linalg.Matrix, int, error) {
	return linalg.ClipNegativeEigenvalues(g)
}

// Center double-centres a Gram matrix in feature space:
// K' = K - 1K - K1 + 1K1 (with 1 = (1/n) ones matrix). Kernel PCA requires
// centred kernels.
func Center(g *linalg.Matrix) *linalg.Matrix {
	n := g.Rows
	out := linalg.NewMatrix(n, n)
	if n == 0 {
		return out
	}
	rowMean := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += g.At(i, j)
		}
		rowMean[i] = s / float64(n)
		total += s
	}
	grand := total / float64(n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, g.At(i, j)-rowMean[i]-rowMean[j]+grand)
		}
	}
	return out
}

// KernelDistance converts a similarity matrix into the kernel-induced
// distance matrix d_ij = sqrt(max(0, k_ii + k_jj - 2 k_ij)). On a PSD
// matrix this is the Euclidean distance in feature space.
func KernelDistance(g *linalg.Matrix) *linalg.Matrix {
	n := g.Rows
	out := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := g.At(i, i) + g.At(j, j) - 2*g.At(i, j)
			if v < 0 {
				v = 0
			}
			out.Set(i, j, math.Sqrt(v))
		}
	}
	return out
}
