package kernel

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"iokast/internal/linalg"
	"iokast/internal/token"
)

// Gram computes the kernel (similarity) matrix over the examples. The
// matrix is symmetric by construction; the diagonal holds self-similarities.
//
// Pairs are distributed over GOMAXPROCS workers. For kernels whose value is
// an inner product of per-string feature maps (the baselines in this
// package), feature maps are computed once per string and reused for every
// pair, which turns the quadratic pair loop into cheap sparse dot products.
func Gram(k Kernel, xs []token.String) *linalg.Matrix {
	return GramWorkers(k, xs, 0)
}

// GramWorkers is Gram with an explicit bound on the number of worker
// goroutines; workers <= 0 means GOMAXPROCS. Services that share the
// process with other work (cmd/iokserve's --workers flag) use it to cap the
// kernel's CPU footprint.
func GramWorkers(k Kernel, xs []token.String, workers int) *linalg.Matrix {
	n := len(xs)
	if f, ok := k.(featurer); ok {
		feats := make([]map[string]float64, n)
		ParallelFor(n, workers, func(i int) { feats[i] = f.features(xs[i]) })
		return SymmetricGram(n, workers, func(i, j int) float64 {
			return dotFeatures(feats[i], feats[j])
		})
	}
	return SymmetricGram(n, workers, func(i, j int) float64 {
		return k.Compare(xs[i], xs[j])
	})
}

// SymmetricGram fills an n x n symmetric matrix from eval, which must be
// symmetric in its arguments and safe for concurrent calls. Rows fan out
// over ParallelFor with the given worker bound. The fill is race-free:
// every cell (i, j) and its mirror (j, i) are written exactly once, by the
// iteration i = min(i, j), and no cell is read until all iterations
// complete. eval is only ever called with i <= j.
func SymmetricGram(n, workers int, eval func(i, j int) float64) *linalg.Matrix {
	g := linalg.NewMatrix(n, n)
	ParallelFor(n, workers, func(i int) {
		for j := i; j < n; j++ {
			v := eval(i, j)
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	})
	return g
}

// ParallelFor runs fn(i) for i in [0, n) on up to `workers` goroutines
// (workers <= 0 means GOMAXPROCS). fn must be safe to call concurrently for
// distinct i. It is the shared fan-out primitive for Gram computation and
// for the incremental engine's row updates, so a single --workers setting
// bounds both.
func ParallelFor(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Work is claimed from a shared atomic counter rather than dispatched
	// over a channel: one uncontended atomic add (~tens of ns) per item
	// instead of a channel send/receive rendezvous (~hundreds of ns, plus
	// the dispatching goroutine serialising on every handoff). For the
	// engine's query fan-out — thousands of ~microsecond kernel evaluations
	// per request — that dispatch overhead was a measurable slice of the
	// row computation.
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// NormalizeCosine rescales a Gram matrix so the diagonal becomes 1:
// g'[i][j] = g[i][j] / sqrt(g[i][i] g[j][j]). Rows with non-positive
// self-similarity are zeroed (their diagonal included), since no meaningful
// normalisation exists for them.
func NormalizeCosine(g *linalg.Matrix) *linalg.Matrix {
	n := g.Rows
	out := linalg.NewMatrix(n, n)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = g.At(i, i)
	}
	for i := 0; i < n; i++ {
		if d[i] <= 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if d[j] <= 0 {
				continue
			}
			out.Set(i, j, g.At(i, j)/math.Sqrt(d[i]*d[j]))
		}
	}
	return out
}

// PSDRepair clips negative eigenvalues to zero and rebuilds the matrix —
// the paper's fix for indefinite similarity matrices. It returns the
// repaired matrix and the number of clipped eigenvalues.
func PSDRepair(g *linalg.Matrix) (*linalg.Matrix, int, error) {
	return linalg.ClipNegativeEigenvalues(g)
}

// Center double-centres a Gram matrix in feature space:
// K' = K - 1K - K1 + 1K1 (with 1 = (1/n) ones matrix). Kernel PCA requires
// centred kernels.
func Center(g *linalg.Matrix) *linalg.Matrix {
	n := g.Rows
	out := linalg.NewMatrix(n, n)
	if n == 0 {
		return out
	}
	rowMean := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += g.At(i, j)
		}
		rowMean[i] = s / float64(n)
		total += s
	}
	grand := total / float64(n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, g.At(i, j)-rowMean[i]-rowMean[j]+grand)
		}
	}
	return out
}

// KernelDistance converts a similarity matrix into the kernel-induced
// distance matrix d_ij = sqrt(max(0, k_ii + k_jj - 2 k_ij)). On a PSD
// matrix this is the Euclidean distance in feature space.
func KernelDistance(g *linalg.Matrix) *linalg.Matrix {
	n := g.Rows
	out := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := g.At(i, i) + g.At(j, j) - 2*g.At(i, j)
			if v < 0 {
				v = 0
			}
			out.Set(i, j, math.Sqrt(v))
		}
	}
	return out
}
