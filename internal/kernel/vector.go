package kernel

import (
	"fmt"
	"math"

	"iokast/internal/linalg"
)

// VectorKernel is a kernel over real vectors. The paper's background (§2.2)
// contrasts these "attribute-value tuple" kernels with string kernels; they
// are implemented here both for completeness of the kernel-methods substrate
// and to cross-check Kernel PCA against ordinary PCA in tests.
type VectorKernel interface {
	Name() string
	Compare(a, b []float64) float64
}

// Linear is the plain inner-product kernel.
type Linear struct{}

// Name implements VectorKernel.
func (Linear) Name() string { return "linear" }

// Compare implements VectorKernel.
func (Linear) Compare(a, b []float64) float64 { return linalg.Dot(a, b) }

// Polynomial is (a.b + C)^Degree.
type Polynomial struct {
	Degree int
	C      float64
}

// Name implements VectorKernel.
func (p Polynomial) Name() string { return fmt.Sprintf("poly(d=%d,c=%g)", p.Degree, p.C) }

// Compare implements VectorKernel.
func (p Polynomial) Compare(a, b []float64) float64 {
	return math.Pow(linalg.Dot(a, b)+p.C, float64(p.Degree))
}

// Gaussian is the RBF kernel exp(-||a-b||^2 / (2 sigma^2)).
type Gaussian struct {
	Sigma float64
}

// Name implements VectorKernel.
func (g Gaussian) Name() string { return fmt.Sprintf("gaussian(sigma=%g)", g.Sigma) }

// Compare implements VectorKernel.
func (g Gaussian) Compare(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("kernel: Gaussian on different-length vectors")
	}
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-d2 / (2 * g.Sigma * g.Sigma))
}

// VectorGram computes the Gram matrix of a vector kernel.
func VectorGram(k VectorKernel, xs [][]float64) *linalg.Matrix {
	n := len(xs)
	g := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := k.Compare(xs[i], xs[j])
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	}
	return g
}
