package kernel

import (
	"fmt"

	"iokast/internal/token"
)

// BagOfTokens is the bag-of-words kernel over weighted strings: each
// distinct token literal is one feature, valued by total weight (WeightSum)
// or occurrence count (Count). It equals Spectrum with K = 1 and exists as
// its own type because the paper discusses it separately ("the bag-of-words
// kernel searches for shared words among strings").
type BagOfTokens struct {
	Mode ValueMode
}

// Name implements Kernel.
func (b *BagOfTokens) Name() string { return fmt.Sprintf("bagoftokens(%s)", b.Mode) }

// Compare implements Kernel.
func (b *BagOfTokens) Compare(a, x token.String) float64 {
	return dotFeatures(b.features(a), b.features(x))
}

func (b *BagOfTokens) features(x token.String) map[string]float64 {
	f := make(map[string]float64, len(x))
	for _, t := range x {
		switch b.Mode {
		case Count:
			f[t.Literal]++
		default:
			f[t.Literal] += float64(t.Weight)
		}
	}
	return f
}

// BagOfChars is the bag-of-characters kernel: each distinct byte of the
// token literals is a feature ("the bag-of-characters kernel only takes
// into account single-character matching"). Weighted tokens contribute
// their weight per contained character in WeightSum mode.
type BagOfChars struct {
	Mode ValueMode
}

// Name implements Kernel.
func (b *BagOfChars) Name() string { return fmt.Sprintf("bagofchars(%s)", b.Mode) }

// Compare implements Kernel.
func (b *BagOfChars) Compare(a, x token.String) float64 {
	return dotFeatures(b.features(a), b.features(x))
}

func (b *BagOfChars) features(x token.String) map[string]float64 {
	f := make(map[string]float64)
	for _, t := range x {
		for i := 0; i < len(t.Literal); i++ {
			key := string(t.Literal[i])
			switch b.Mode {
			case Count:
				f[key]++
			default:
				f[key] += float64(t.Weight)
			}
		}
	}
	return f
}
