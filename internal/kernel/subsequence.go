package kernel

import (
	"fmt"

	"iokast/internal/token"
)

// Subsequence is the gap-weighted subsequence kernel (Lodhi, Saunders,
// Shawe-Taylor, Cristianini, Watkins 2002), the classic string kernel of
// the book the paper builds on [4]. Features are all ordered — not
// necessarily contiguous — token sequences of length P; each co-occurrence
// contributes Lambda raised to the total spanned length in both strings,
// so gappy matches are exponentially down-weighted.
//
// It is implemented over token literals with the standard O(P·n·m) dynamic
// programme; Weighted additionally multiplies every aligned token pair's
// contribution by the product of the two token weights, which is the
// natural lift of the kernel onto weighted strings.
type Subsequence struct {
	P        int
	Lambda   float64
	Weighted bool
}

// Name implements Kernel.
func (s *Subsequence) Name() string {
	return fmt.Sprintf("subseq(p=%d,lambda=%g,weighted=%v)", s.P, s.lambda(), s.Weighted)
}

func (s *Subsequence) lambda() float64 {
	if s.Lambda == 0 {
		return 0.5
	}
	return s.Lambda
}

// Compare implements Kernel.
func (s *Subsequence) Compare(a, b token.String) float64 {
	p := s.P
	n, m := len(a), len(b)
	if p <= 0 || n < p || m < p {
		return 0
	}
	lam := s.lambda()

	match := func(i, j int) float64 {
		if a[i].Literal != b[j].Literal {
			return 0
		}
		if s.Weighted {
			return float64(a[i].Weight) * float64(b[j].Weight)
		}
		return 1
	}

	// kp[i][j]: K'_q over prefixes a[:i], b[:j] (suffix-aligned helper).
	kp := make([][]float64, n+1)
	kpPrev := make([][]float64, n+1)
	for i := range kp {
		kp[i] = make([]float64, m+1)
		kpPrev[i] = make([]float64, m+1)
		for j := range kpPrev[i] {
			kpPrev[i][j] = 1 // K'_0 == 1
		}
	}
	kpp := make([]float64, m+1) // K'' row buffer

	var result float64
	for q := 1; q <= p; q++ {
		for j := 0; j <= m; j++ {
			kpp[j] = 0
		}
		for i := 1; i <= n; i++ {
			kpp[0] = 0
			for j := 1; j <= m; j++ {
				kpp[j] = lam*kpp[j-1] + lam*lam*match(i-1, j-1)*kpPrev[i-1][j-1]
			}
			for j := 0; j <= m; j++ {
				kp[i][j] = lam*kp[i-1][j] + kpp[j]
			}
		}
		if q == p {
			// K_p = sum over final aligned pairs.
			result = 0
			for i := 1; i <= n; i++ {
				for j := 1; j <= m; j++ {
					result += lam * lam * match(i-1, j-1) * kpPrev[i-1][j-1]
				}
			}
		}
		kp, kpPrev = kpPrev, kp
		for i := range kp {
			for j := range kp[i] {
				kp[i][j] = 0
			}
		}
	}
	return result
}
