// Package linalg provides the small dense linear-algebra kernel the project
// needs: row-major matrices, vector helpers, and a Jacobi eigensolver for
// symmetric matrices (used by Kernel PCA and by the positive-semidefinite
// repair of kernel matrices). Everything is stdlib-only and sized for the
// paper's workloads (Gram matrices of a few hundred examples).
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// GrowSymmetric appends one row and the mirrored column to a square matrix
// in place. rowcol holds the new row's n+1 entries: rowcol[j] becomes both
// (n, j) and (j, n) for j < n, and rowcol[n] the new diagonal element. The
// backing slice grows geometrically, so appending n rows one at a time —
// the incremental Gram engine's access pattern — costs O(n^2) amortised
// rather than O(n^3) reallocation.
func (m *Matrix) GrowSymmetric(rowcol []float64) {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("linalg: GrowSymmetric on non-square %dx%d matrix", m.Rows, m.Cols))
	}
	n := m.Rows
	if len(rowcol) != n+1 {
		panic(fmt.Sprintf("linalg: GrowSymmetric rowcol has %d entries, want %d", len(rowcol), n+1))
	}
	need := (n + 1) * (n + 1)
	var data []float64
	if cap(m.Data) >= need {
		data = m.Data[:need]
	} else {
		data = make([]float64, need, 2*need)
	}
	// Rewidden rows from the last backwards so in-place growth never
	// overwrites a row before it is moved.
	for i := n - 1; i >= 0; i-- {
		copy(data[i*(n+1):i*(n+1)+n], m.Data[i*n:(i+1)*n])
		data[i*(n+1)+n] = rowcol[i]
	}
	copy(data[n*(n+1):], rowcol)
	m.Data = data
	m.Rows, m.Cols = n+1, n+1
}

// GrowSymmetricBlock appends m rows and their mirrored columns to a square
// matrix in one reallocation. rows[t] holds the (n+t)-th new row's n+t+1
// entries: its kernel values against the n existing rows, then against the
// t earlier rows of the block, then its own diagonal element. Equivalent to
// m successive GrowSymmetric calls but with a single data movement, which
// is what makes batched ingestion (engine.AddBatch) cheap: growing row by
// row pays the row-rewidening copy m times, growing as a block pays it
// once.
func (m *Matrix) GrowSymmetricBlock(rows [][]float64) {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("linalg: GrowSymmetricBlock on non-square %dx%d matrix", m.Rows, m.Cols))
	}
	n := m.Rows
	k := len(rows)
	if k == 0 {
		return
	}
	for t, r := range rows {
		if len(r) != n+t+1 {
			panic(fmt.Sprintf("linalg: GrowSymmetricBlock row %d has %d entries, want %d", t, len(r), n+t+1))
		}
	}
	w := n + k // final width
	need := w * w
	var data []float64
	if cap(m.Data) >= need {
		data = m.Data[:need]
	} else {
		data = make([]float64, need, 2*need)
	}
	// Rewiden existing rows from the last backwards so in-place growth never
	// overwrites a row before it is moved, appending the k mirrored columns.
	for i := n - 1; i >= 0; i-- {
		copy(data[i*w:i*w+n], m.Data[i*n:(i+1)*n])
		for t := 0; t < k; t++ {
			data[i*w+n+t] = rows[t][i]
		}
	}
	// New rows: the provided prefix plus the mirror of later block rows.
	for t := 0; t < k; t++ {
		base := (n + t) * w
		copy(data[base:base+n+t+1], rows[t])
		for u := t + 1; u < k; u++ {
			data[base+n+u] = rows[u][n+t]
		}
	}
	m.Data = data
	m.Rows, m.Cols = w, w
}

// SelectSymmetric returns the principal submatrix over the given row/column
// indices, in the given order. Indices may repeat; each must be in range.
func (m *Matrix) SelectSymmetric(idx []int) *Matrix {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("linalg: SelectSymmetric on non-square %dx%d matrix", m.Rows, m.Cols))
	}
	out := NewMatrix(len(idx), len(idx))
	for a, i := range idx {
		row := m.Row(i)
		outRow := out.Row(a)
		for b, j := range idx {
			outRow[b] = row[j]
		}
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns the transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m * o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k, mv := range mi {
			if mv == 0 {
				continue
			}
			ok := o.Row(k)
			for j, ov := range ok {
				oi[j] += mv * ov
			}
		}
	}
	return out
}

// Add returns m + o.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.sameShape(o, "Add")
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m - o.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.sameShape(o, "Sub")
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s * m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

func (m *Matrix) sameShape(o *Matrix, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// IsSymmetric reports whether the matrix is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func (m *Matrix) MaxAbsDiff(o *Matrix) float64 {
	m.sameShape(o, "MaxAbsDiff")
	max := 0.0
	for i, v := range m.Data {
		if d := math.Abs(v - o.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// FrobeniusNorm returns sqrt(sum of squared entries).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the matrix with 4 decimal places (small matrices only; for
// debugging and golden tests).
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Scale scales a vector in place.
func Scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// AxPy computes y += a*x in place.
func AxPy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AxPy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}
