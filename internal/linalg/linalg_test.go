package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"iokast/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("shape wrong: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("not zeroed")
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("At wrong: %v", m.Data)
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("Set failed")
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityMul(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	p := Identity(2).Mul(m)
	if p.MaxAbsDiff(m) != 0 {
		t.Fatal("I*m != m")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := a.Mul(b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if got.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("Mul:\n%v", got)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	if a.Add(b).MaxAbsDiff(FromRows([][]float64{{5, 5}, {5, 5}})) > 0 {
		t.Fatal("Add wrong")
	}
	if a.Sub(a).FrobeniusNorm() != 0 {
		t.Fatal("Sub wrong")
	}
	if a.Scale(2).At(1, 1) != 8 {
		t.Fatal("Scale wrong")
	}
	// Originals untouched.
	if a.At(0, 0) != 1 || b.At(0, 0) != 4 {
		t.Fatal("operations mutated input")
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Fatalf("Transpose wrong: %v", at)
	}
}

func TestIsSymmetric(t *testing.T) {
	if !FromRows([][]float64{{1, 2}, {2, 1}}).IsSymmetric(0) {
		t.Fatal("symmetric not detected")
	}
	if FromRows([][]float64{{1, 2}, {3, 1}}).IsSymmetric(1e-9) {
		t.Fatal("asymmetric accepted")
	}
	if NewMatrix(2, 3).IsSymmetric(1) {
		t.Fatal("non-square accepted")
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
	v := []float64{1, 2}
	Scale(v, 3)
	if v[1] != 6 {
		t.Fatal("Scale wrong")
	}
	y := []float64{1, 1}
	AxPy(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatal("AxPy wrong")
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("vals = %v", vals)
	}
	if r := Reconstruct(vals, vecs); r.MaxAbsDiff(m) > 1e-10 {
		t.Fatalf("reconstruction error:\n%v", r)
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, _, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("vals = %v", vals)
	}
}

func TestEigenSymDescendingOrder(t *testing.T) {
	m := FromRows([][]float64{{1, 0, 0}, {0, 5, 0}, {0, 0, 3}})
	vals, _, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1] {
			t.Fatalf("not descending: %v", vals)
		}
	}
}

func TestEigenSymRejectsBadInput(t *testing.T) {
	if _, _, err := EigenSym(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, _, err := EigenSym(FromRows([][]float64{{1, 5}, {-5, 1}})); err == nil {
		t.Fatal("non-symmetric accepted")
	}
}

func TestEigenSymEmpty(t *testing.T) {
	vals, vecs, err := EigenSym(NewMatrix(0, 0))
	if err != nil || len(vals) != 0 || vecs.Rows != 0 {
		t.Fatalf("empty: %v %v %v", vals, vecs, err)
	}
}

func randomSymmetric(r *xrand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.Float64()*4 - 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// Property: EigenSym reconstructs the input and produces orthonormal
// vectors.
func TestEigenSymQuickReconstruction(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		r := xrand.New(seed)
		m := randomSymmetric(r, n)
		vals, vecs, err := EigenSym(m)
		if err != nil {
			return false
		}
		if Reconstruct(vals, vecs).MaxAbsDiff(m) > 1e-8 {
			return false
		}
		// V^T V == I.
		vtv := vecs.Transpose().Mul(vecs)
		return vtv.MaxAbsDiff(Identity(n)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: for PSD matrices (G = A^T A) all eigenvalues are >= -eps.
func TestEigenSymQuickPSD(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%6) + 1
		r := xrand.New(seed)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.Float64()*2 - 1
		}
		g := a.Transpose().Mul(a)
		min, err := MinEigenvalue(g)
		if err != nil {
			return false
		}
		return min > -1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClipNegativeEigenvalues(t *testing.T) {
	// Indefinite matrix: eigenvalues 1 and -1.
	m := FromRows([][]float64{{0, 1}, {1, 0}})
	fixed, clipped, err := ClipNegativeEigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	if clipped != 1 {
		t.Fatalf("clipped = %d, want 1", clipped)
	}
	min, err := MinEigenvalue(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if min < -1e-10 {
		t.Fatalf("still indefinite: min eig %v", min)
	}
	// Expected result: (m + |m|)/2 = [[0.5,0.5],[0.5,0.5]].
	want := FromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	if fixed.MaxAbsDiff(want) > 1e-10 {
		t.Fatalf("clip result:\n%v", fixed)
	}
}

func TestClipNoopOnPSD(t *testing.T) {
	m := FromRows([][]float64{{2, 1}, {1, 2}})
	fixed, clipped, err := ClipNegativeEigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	if clipped != 0 {
		t.Fatalf("clipped = %d, want 0", clipped)
	}
	if fixed.MaxAbsDiff(m) > 1e-12 {
		t.Fatal("PSD matrix altered")
	}
}

func TestMinEigenvalueEmpty(t *testing.T) {
	if _, err := MinEigenvalue(NewMatrix(0, 0)); err == nil {
		t.Fatal("expected error on empty matrix")
	}
}

func TestStringRendering(t *testing.T) {
	s := FromRows([][]float64{{1, 2}}).String()
	if s == "" {
		t.Fatal("empty render")
	}
}

func TestRowIsView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Row(1)[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row is not a view")
	}
}

func TestEigenSymLargerSpectrum(t *testing.T) {
	// Rank-1 matrix vv^T with v = (1,2,3): eigenvalues {14, 0, 0}.
	v := []float64{1, 2, 3}
	m := NewMatrix(3, 3)
	for i := range v {
		for j := range v {
			m.Set(i, j, v[i]*v[j])
		}
	}
	vals, _, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 14, 1e-9) || !almostEq(vals[1], 0, 1e-9) || !almostEq(vals[2], 0, 1e-9) {
		t.Fatalf("vals = %v", vals)
	}
}
