package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix using
// the cyclic Jacobi rotation method. It returns the eigenvalues in
// descending order and the corresponding orthonormal eigenvectors as the
// COLUMNS of the returned matrix: m = V * diag(values) * V^T.
//
// Jacobi is O(n^3) per sweep and typically converges in < 15 sweeps; for the
// Gram matrices in this project (n in the hundreds) this is comfortably
// fast, numerically robust, and has no external dependencies.
func EigenSym(m *Matrix) (values []float64, vectors *Matrix, err error) {
	if m.Rows != m.Cols {
		return nil, nil, fmt.Errorf("linalg: EigenSym on non-square %dx%d matrix", m.Rows, m.Cols)
	}
	const symTol = 1e-8
	if !m.IsSymmetric(symTol * (1 + m.FrobeniusNorm())) {
		return nil, nil, fmt.Errorf("linalg: EigenSym on non-symmetric matrix")
	}
	n := m.Rows
	a := m.Clone() // working copy, becomes diagonal
	v := Identity(n)

	if n == 0 {
		return nil, v, nil
	}

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(a)
		if off < 1e-13*(1+a.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				// Compute the rotation that zeroes a[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(a, v, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = a.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// rotate applies the Jacobi rotation G(p,q,c,s) to a (two-sided) and
// accumulates it into v (one-sided).
func rotate(a, v *Matrix, p, q int, c, s float64) {
	n := a.Rows
	for i := 0; i < n; i++ {
		aip, aiq := a.At(i, p), a.At(i, q)
		a.Set(i, p, c*aip-s*aiq)
		a.Set(i, q, s*aip+c*aiq)
	}
	for j := 0; j < n; j++ {
		apj, aqj := a.At(p, j), a.At(q, j)
		a.Set(p, j, c*apj-s*aqj)
		a.Set(q, j, s*apj+c*aqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(a *Matrix) float64 {
	var s float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if i != j {
				s += a.At(i, j) * a.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

// Reconstruct computes V * diag(values) * V^T, the inverse of EigenSym.
func Reconstruct(values []float64, vectors *Matrix) *Matrix {
	n := vectors.Rows
	out := NewMatrix(n, n)
	for k, lam := range values {
		if lam == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			vik := vectors.At(i, k)
			if vik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += lam * vik * vectors.At(j, k)
			}
		}
	}
	return out
}

// ClipNegativeEigenvalues returns the nearest positive-semidefinite matrix
// obtained by zeroing negative eigenvalues and rebuilding — the procedure
// the paper applies to indefinite kernel matrices ("If the matrices
// presented negative eigenvalues, they were replaced by zero and the
// matrices rebuilt"). The second result reports how many eigenvalues were
// clipped.
func ClipNegativeEigenvalues(m *Matrix) (*Matrix, int, error) {
	values, vectors, err := EigenSym(m)
	if err != nil {
		return nil, 0, err
	}
	clipped := 0
	for i, v := range values {
		if v < 0 {
			values[i] = 0
			clipped++
		}
	}
	if clipped == 0 {
		return m.Clone(), 0, nil
	}
	return Reconstruct(values, vectors), clipped, nil
}

// MinEigenvalue returns the smallest eigenvalue of a symmetric matrix.
func MinEigenvalue(m *Matrix) (float64, error) {
	values, _, err := EigenSym(m)
	if err != nil {
		return 0, err
	}
	if len(values) == 0 {
		return 0, fmt.Errorf("linalg: empty matrix")
	}
	return values[len(values)-1], nil
}
