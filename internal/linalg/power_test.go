package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"iokast/internal/xrand"
)

func TestTopEigenDiagonal(t *testing.T) {
	m := FromRows([][]float64{{5, 0, 0}, {0, 3, 0}, {0, 0, 1}})
	vals, vecs, err := TopEigen(m, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-5) > 1e-8 || math.Abs(vals[1]-3) > 1e-8 {
		t.Fatalf("vals %v", vals)
	}
	// Eigenvector of 5 is e1 up to sign.
	if math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-6 {
		t.Fatalf("top vector %v", vecs)
	}
}

func TestTopEigenValidation(t *testing.T) {
	if _, _, err := TopEigen(NewMatrix(2, 3), 1, 0, 0); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, _, err := TopEigen(NewMatrix(2, 2), 0, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	// k clamps to n.
	vals, _, err := TopEigen(Identity(2), 5, 0, 0)
	if err != nil || len(vals) != 2 {
		t.Fatalf("clamp: %v %v", vals, err)
	}
}

// Property: on random PSD matrices, the top-k eigenvalues from power
// iteration match the Jacobi decomposition.
func TestQuickTopEigenMatchesJacobi(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		r := xrand.New(seed)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.Float64()*2 - 1
		}
		g := a.Transpose().Mul(a) // PSD: eigenvalues ordered by magnitude
		wantVals, _, err := EigenSym(g)
		if err != nil {
			return false
		}
		k := 2
		if k > n {
			k = n
		}
		gotVals, vecs, err := TopEigen(g, k, 2000, 1e-14)
		if err != nil {
			return false
		}
		for c := 0; c < k; c++ {
			if math.Abs(gotVals[c]-wantVals[c]) > 1e-5*(1+math.Abs(wantVals[c])) {
				return false
			}
			// Residual check: ||Gv - lambda v|| small.
			v := make([]float64, n)
			for i := 0; i < n; i++ {
				v[i] = vecs.At(i, c)
			}
			gv := matVec(g, v)
			AxPy(-gotVals[c], v, gv)
			if Norm2(gv) > 1e-4*(1+math.Abs(gotVals[c])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTopEigenZeroMatrix(t *testing.T) {
	vals, _, err := TopEigen(NewMatrix(3, 3), 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v != 0 {
			t.Fatalf("zero matrix eigenvalues %v", vals)
		}
	}
}
