package linalg

import "testing"

func TestGrowSymmetric(t *testing.T) {
	m := NewMatrix(0, 0)
	m.GrowSymmetric([]float64{1})
	m.GrowSymmetric([]float64{2, 3})
	m.GrowSymmetric([]float64{4, 5, 6})
	want := FromRows([][]float64{
		{1, 2, 4},
		{2, 3, 5},
		{4, 5, 6},
	})
	if d := m.MaxAbsDiff(want); d != 0 {
		t.Fatalf("grown matrix:\n%v\nwant:\n%v", m, want)
	}
	if !m.IsSymmetric(0) {
		t.Fatal("grown matrix not symmetric")
	}
}

func TestGrowSymmetricReusesCapacity(t *testing.T) {
	m := NewMatrix(0, 0)
	grows := 0
	var lastCap int
	for n := 0; n < 64; n++ {
		rowcol := make([]float64, n+1)
		for j := range rowcol {
			rowcol[j] = float64(n*100 + j)
		}
		m.GrowSymmetric(rowcol)
		if cap(m.Data) != lastCap {
			grows++
			lastCap = cap(m.Data)
		}
	}
	// Geometric growth: far fewer reallocations than appends.
	if grows > 16 {
		t.Fatalf("%d reallocations over 64 appends; growth is not amortised", grows)
	}
	// Spot-check the last row survived all the in-place moves.
	for j := 0; j < 64; j++ {
		if got := m.At(63, j); got != float64(6300+j) {
			t.Fatalf("m[63][%d] = %g, want %d", j, got, 6300+j)
		}
	}
}

// TestGrowSymmetricBlockMatchesSequential checks the block append against
// the single-row reference across block shapes, both from empty and onto an
// existing matrix, with and without spare capacity.
func TestGrowSymmetricBlockMatchesSequential(t *testing.T) {
	val := func(i, j int) float64 { return float64((i+1)*1000 + j) }
	rows := func(n, k int) [][]float64 {
		out := make([][]float64, k)
		for t := 0; t < k; t++ {
			out[t] = make([]float64, n+t+1)
			for j := range out[t] {
				out[t][j] = val(n+t, j)
			}
		}
		return out
	}
	for _, tc := range []struct{ n, k int }{
		{0, 1}, {0, 5}, {3, 1}, {3, 4}, {7, 2}, {1, 8},
	} {
		base := func() *Matrix {
			m := NewMatrix(0, 0)
			for i := 0; i < tc.n; i++ {
				rc := make([]float64, i+1)
				for j := range rc {
					rc[j] = val(i, j)
				}
				m.GrowSymmetric(rc)
			}
			return m
		}
		want := base()
		for _, r := range rows(tc.n, tc.k) {
			want.GrowSymmetric(append([]float64(nil), r...))
		}
		got := base()
		got.GrowSymmetricBlock(rows(tc.n, tc.k))
		if d := got.MaxAbsDiff(want); d != 0 {
			t.Fatalf("n=%d k=%d: block append differs from sequential:\ngot:\n%v\nwant:\n%v", tc.n, tc.k, got, want)
		}
		if !got.IsSymmetric(0) {
			t.Fatalf("n=%d k=%d: block-grown matrix not symmetric", tc.n, tc.k)
		}
		// Again with spare capacity, exercising the in-place move.
		warm := base()
		warm.GrowSymmetricBlock(rows(tc.n, tc.k)) // forces a reallocation with 2x cap
		shrunk := warm.SelectSymmetric(seqInts(tc.n))
		shrunk.Data = append(warm.Data[:0], shrunk.Data...) // reuse warm's large backing
		shrunk.GrowSymmetricBlock(rows(tc.n, tc.k))
		if d := shrunk.MaxAbsDiff(want); d != 0 {
			t.Fatalf("n=%d k=%d: in-place block append differs by %g", tc.n, tc.k, d)
		}
	}
	// Empty block is a no-op.
	m := FromRows([][]float64{{1, 2}, {2, 3}})
	m.GrowSymmetricBlock(nil)
	if m.Rows != 2 || m.At(1, 1) != 3 {
		t.Fatal("empty block append mutated the matrix")
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestGrowSymmetricBlockPanics(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	check("non-square", func() { NewMatrix(2, 3).GrowSymmetricBlock([][]float64{{1, 2, 3}}) })
	check("wrong row length", func() { NewMatrix(2, 2).GrowSymmetricBlock([][]float64{{1, 2, 3}, {1}}) })
}

func TestGrowSymmetricPanics(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	check("non-square", func() { NewMatrix(2, 3).GrowSymmetric([]float64{1, 2, 3}) })
	check("wrong length", func() { NewMatrix(2, 2).GrowSymmetric([]float64{1}) })
}

func TestSelectSymmetric(t *testing.T) {
	m := FromRows([][]float64{
		{0, 1, 2, 3},
		{1, 11, 12, 13},
		{2, 12, 22, 23},
		{3, 13, 23, 33},
	})
	got := m.SelectSymmetric([]int{0, 2, 3})
	want := FromRows([][]float64{
		{0, 2, 3},
		{2, 22, 23},
		{3, 23, 33},
	})
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Fatalf("submatrix:\n%v\nwant:\n%v", got, want)
	}
	if empty := m.SelectSymmetric(nil); empty.Rows != 0 || empty.Cols != 0 {
		t.Fatalf("empty selection = %dx%d", empty.Rows, empty.Cols)
	}
	// Reordering indices permutes the matrix accordingly.
	perm := m.SelectSymmetric([]int{3, 0})
	if perm.At(0, 0) != 33 || perm.At(0, 1) != 3 || perm.At(1, 1) != 0 {
		t.Fatalf("permuted selection wrong:\n%v", perm)
	}
}
