package linalg

import "testing"

func TestGrowSymmetric(t *testing.T) {
	m := NewMatrix(0, 0)
	m.GrowSymmetric([]float64{1})
	m.GrowSymmetric([]float64{2, 3})
	m.GrowSymmetric([]float64{4, 5, 6})
	want := FromRows([][]float64{
		{1, 2, 4},
		{2, 3, 5},
		{4, 5, 6},
	})
	if d := m.MaxAbsDiff(want); d != 0 {
		t.Fatalf("grown matrix:\n%v\nwant:\n%v", m, want)
	}
	if !m.IsSymmetric(0) {
		t.Fatal("grown matrix not symmetric")
	}
}

func TestGrowSymmetricReusesCapacity(t *testing.T) {
	m := NewMatrix(0, 0)
	grows := 0
	var lastCap int
	for n := 0; n < 64; n++ {
		rowcol := make([]float64, n+1)
		for j := range rowcol {
			rowcol[j] = float64(n*100 + j)
		}
		m.GrowSymmetric(rowcol)
		if cap(m.Data) != lastCap {
			grows++
			lastCap = cap(m.Data)
		}
	}
	// Geometric growth: far fewer reallocations than appends.
	if grows > 16 {
		t.Fatalf("%d reallocations over 64 appends; growth is not amortised", grows)
	}
	// Spot-check the last row survived all the in-place moves.
	for j := 0; j < 64; j++ {
		if got := m.At(63, j); got != float64(6300+j) {
			t.Fatalf("m[63][%d] = %g, want %d", j, got, 6300+j)
		}
	}
}

func TestGrowSymmetricPanics(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	check("non-square", func() { NewMatrix(2, 3).GrowSymmetric([]float64{1, 2, 3}) })
	check("wrong length", func() { NewMatrix(2, 2).GrowSymmetric([]float64{1}) })
}

func TestSelectSymmetric(t *testing.T) {
	m := FromRows([][]float64{
		{0, 1, 2, 3},
		{1, 11, 12, 13},
		{2, 12, 22, 23},
		{3, 13, 23, 33},
	})
	got := m.SelectSymmetric([]int{0, 2, 3})
	want := FromRows([][]float64{
		{0, 2, 3},
		{2, 22, 23},
		{3, 23, 33},
	})
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Fatalf("submatrix:\n%v\nwant:\n%v", got, want)
	}
	if empty := m.SelectSymmetric(nil); empty.Rows != 0 || empty.Cols != 0 {
		t.Fatalf("empty selection = %dx%d", empty.Rows, empty.Cols)
	}
	// Reordering indices permutes the matrix accordingly.
	perm := m.SelectSymmetric([]int{3, 0})
	if perm.At(0, 0) != 33 || perm.At(0, 1) != 3 || perm.At(1, 1) != 0 {
		t.Fatalf("permuted selection wrong:\n%v", perm)
	}
}
