package linalg

import (
	"fmt"
	"math"
)

// TopEigen computes the k largest-magnitude eigenpairs of a symmetric
// matrix by power iteration with Hotelling deflation. For the Gram-matrix
// sizes in this project the full Jacobi decomposition (EigenSym) is fast
// enough; TopEigen exists for the large-dataset regime where only a few
// components are needed (Kernel PCA keeps 2) and O(k n^2) beats O(n^3).
//
// Eigenvalues are returned in descending magnitude order with their unit
// eigenvectors as the columns of the returned matrix. maxIter bounds the
// iterations per eigenpair (512 is ample for well-separated spectra);
// convergence is declared when the eigenvalue estimate stabilises to
// within tol relatively.
func TopEigen(m *Matrix, k int, maxIter int, tol float64) ([]float64, *Matrix, error) {
	n := m.Rows
	if m.Cols != n {
		return nil, nil, fmt.Errorf("linalg: TopEigen on non-square %dx%d matrix", n, m.Cols)
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("linalg: TopEigen with k=%d", k)
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 512
	}
	if tol <= 0 {
		tol = 1e-12
	}
	work := m.Clone()
	values := make([]float64, 0, k)
	vectors := NewMatrix(n, k)

	for c := 0; c < k; c++ {
		v := make([]float64, n)
		// Deterministic pseudo-random start vector; orthogonalise against
		// found eigenvectors so deflated directions are not reintroduced
		// by numerical noise.
		for i := range v {
			v[i] = 1 / float64(i+c+1)
		}
		normalize(v)
		var lam, prev float64
		for iter := 0; iter < maxIter; iter++ {
			w := matVec(work, v)
			lam = Dot(v, w)
			nrm := Norm2(w)
			if nrm == 0 {
				lam = 0
				break // matrix annihilates v: remaining spectrum is zero
			}
			Scale(w, 1/nrm)
			v = w
			if iter > 0 && math.Abs(lam-prev) <= tol*(1+math.Abs(lam)) {
				break
			}
			prev = lam
		}
		values = append(values, lam)
		for i := 0; i < n; i++ {
			vectors.Set(i, c, v[i])
		}
		// Deflate: work -= lam * v v^T.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				work.Set(i, j, work.At(i, j)-lam*v[i]*v[j])
			}
		}
	}
	return values, vectors, nil
}

func matVec(m *Matrix, v []float64) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
	return out
}

func normalize(v []float64) {
	if n := Norm2(v); n > 0 {
		Scale(v, 1/n)
	}
}
