package token

import (
	"iokast/internal/tree"
)

// FromTree flattens a pattern tree into its weighted string (§3.1, Fig. 2):
// pre-order traversal; ROOT/HANDLE/BLOCK become structural tokens of weight
// 1; leaves become "name[bytes]" tokens weighted by their repetition count;
// a [LEVEL_UP] token with weight equal to the number of levels jumped is
// inserted whenever the traversal moves upward before the next node. No
// trailing [LEVEL_UP] is emitted after the final node ("its weight is simply
// the amount of levels jumped until the next new node is found" — after the
// last node there is no next node).
func FromTree(root *tree.Node) String {
	var s String
	pendingUp := 0

	var visit func(n *tree.Node, depth int)
	visit = func(n *tree.Node, depth int) {
		if pendingUp > 0 {
			s = append(s, Token{Literal: LitLevelUp, Weight: pendingUp})
			pendingUp = 0
		}
		s = append(s, tokenFor(n))
		for _, c := range n.Children {
			visit(c, depth+1)
		}
		pendingUp++
	}
	visit(root, 0)
	return s
}

func tokenFor(n *tree.Node) Token {
	switch n.Kind {
	case tree.Root:
		return Token{Literal: LitRoot, Weight: 1}
	case tree.Handle:
		return Token{Literal: LitHandle, Weight: 1}
	case tree.Block:
		return Token{Literal: LitBlock, Weight: 1}
	default:
		return Token{Literal: OpLiteral(n.Name, n.Bytes), Weight: n.Repeat}
	}
}
