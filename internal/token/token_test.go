package token

import (
	"strings"
	"testing"
	"testing/quick"

	"iokast/internal/trace"
	"iokast/internal/tree"
	"iokast/internal/xrand"
)

func TestTokenString(t *testing.T) {
	tok := Token{Literal: "read[4096]", Weight: 7}
	if tok.String() != "read[4096]:7" {
		t.Fatalf("String = %q", tok.String())
	}
}

func TestIsStructural(t *testing.T) {
	for _, lit := range []string{LitRoot, LitHandle, LitBlock, LitLevelUp} {
		if !(Token{Literal: lit, Weight: 1}).IsStructural() {
			t.Errorf("%s not structural", lit)
		}
	}
	if (Token{Literal: "read[8]", Weight: 1}).IsStructural() {
		t.Error("op token marked structural")
	}
}

func TestOpLiteral(t *testing.T) {
	if OpLiteral("lseek+write", 512) != "lseek+write[512]" {
		t.Fatalf("OpLiteral = %q", OpLiteral("lseek+write", 512))
	}
}

func TestWeightFunctions(t *testing.T) {
	s := String{
		{Literal: "a", Weight: 5},
		{Literal: "b", Weight: 1},
		{Literal: "c", Weight: 4},
	}
	if s.Weight() != 10 {
		t.Fatalf("Weight = %d", s.Weight())
	}
	if s.WeightAtLeast(4) != 9 {
		t.Fatalf("WeightAtLeast(4) = %d, want 9", s.WeightAtLeast(4))
	}
	if s.WeightAtLeast(100) != 0 {
		t.Fatalf("WeightAtLeast(100) = %d, want 0", s.WeightAtLeast(100))
	}
	if s.WeightAtLeast(1) != s.Weight() {
		t.Fatal("WeightAtLeast(1) must equal Weight")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	s := String{
		{Literal: LitRoot, Weight: 1},
		{Literal: LitHandle, Weight: 1},
		{Literal: LitBlock, Weight: 1},
		{Literal: "write[1024]", Weight: 12},
		{Literal: LitLevelUp, Weight: 3},
		{Literal: "read+write[64]", Weight: 2},
	}
	text := s.Format()
	got, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	if !got.Equal(s) {
		t.Fatalf("round trip: got %v, want %v", got, s)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"abc", ":5", "x:", "x:zero", "x:0", "x:-2"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", in)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	s, err := Parse("  \n ")
	if err != nil || len(s) != 0 {
		t.Fatalf("Parse empty = %v, %v", s, err)
	}
}

func TestValidate(t *testing.T) {
	good := String{{Literal: "read[8]", Weight: 1}}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate(good): %v", err)
	}
	bad := []String{
		{{Literal: "", Weight: 1}},
		{{Literal: "x", Weight: 0}},
		{{Literal: "a b", Weight: 1}},
		{{Literal: "a:b", Weight: 1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %v", i, s)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	s := String{{Literal: "x", Weight: 1}}
	c := s.Clone()
	c[0].Weight = 9
	if s[0].Weight != 1 {
		t.Fatal("Clone shares backing array effects")
	}
}

func mustTrace(t *testing.T, text string) *trace.Trace {
	t.Helper()
	tr, err := trace.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestFromTreeGolden mirrors the paper's Fig. 1/2 conversion on a small
// two-handle pattern.
func TestFromTreeGolden(t *testing.T) {
	tr := mustTrace(t, `
open fh=1
write fh=1 bytes=8
write fh=1 bytes=8
close fh=1
open fh=2
read fh=2 bytes=4
close fh=2
`)
	root := tree.BuildCompressed(tr, tree.BuildOptions{}, tree.DefaultCompress())
	s := FromTree(root)
	want := "[ROOT]:1 [HANDLE]:1 [BLOCK]:1 write[8]:2 [LEVEL_UP]:3 [HANDLE]:1 [BLOCK]:1 read[4]:1"
	if got := s.Format(); got != want {
		t.Fatalf("FromTree:\n got %q\nwant %q", got, want)
	}
}

func TestFromTreeSiblingLeavesLevelUpOne(t *testing.T) {
	blk := tree.NewInterior(tree.Block, tree.NewOp("a", 1), tree.NewOp("b", 2))
	root := tree.NewInterior(tree.Root, tree.NewInterior(tree.Handle, blk))
	s := FromTree(root)
	want := "[ROOT]:1 [HANDLE]:1 [BLOCK]:1 a[1]:1 [LEVEL_UP]:1 b[2]:1"
	if got := s.Format(); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestFromTreeMultipleBlocks(t *testing.T) {
	h := tree.NewInterior(tree.Handle,
		tree.NewInterior(tree.Block, tree.NewOp("w", 8)),
		tree.NewInterior(tree.Block, tree.NewOp("r", 4)),
	)
	root := tree.NewInterior(tree.Root, h)
	s := FromTree(root)
	want := "[ROOT]:1 [HANDLE]:1 [BLOCK]:1 w[8]:1 [LEVEL_UP]:2 [BLOCK]:1 r[4]:1"
	if got := s.Format(); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestFromTreeNoTrailingLevelUp(t *testing.T) {
	tr := mustTrace(t, "open fh=1\nwrite fh=1 bytes=8\nclose fh=1\n")
	s := FromTree(tree.Build(tr, tree.BuildOptions{}))
	if s[len(s)-1].Literal == LitLevelUp {
		t.Fatalf("trailing LEVEL_UP in %q", s.Format())
	}
}

func TestFromTreeEmptyRoot(t *testing.T) {
	s := FromTree(tree.NewInterior(tree.Root))
	if len(s) != 1 || s[0].Literal != LitRoot {
		t.Fatalf("empty tree = %v", s)
	}
}

func TestFromTreeRepeatBecomesWeight(t *testing.T) {
	op := tree.NewOp("write", 64)
	op.Repeat = 17
	blk := tree.NewInterior(tree.Block, op)
	root := tree.NewInterior(tree.Root, tree.NewInterior(tree.Handle, blk))
	s := FromTree(root)
	if s[3].Weight != 17 || s[3].Literal != "write[64]" {
		t.Fatalf("leaf token = %v", s[3])
	}
}

// randomTree builds a random valid pattern tree for property tests.
func randomTree(r *xrand.Rand) *tree.Node {
	root := tree.NewInterior(tree.Root)
	for h := 0; h < r.IntRange(1, 3); h++ {
		hn := tree.NewInterior(tree.Handle)
		for b := 0; b < r.IntRange(1, 3); b++ {
			bn := tree.NewInterior(tree.Block)
			for o := 0; o < r.IntRange(0, 5); o++ {
				op := tree.NewOp("op"+string(rune('a'+r.Intn(4))), int64(r.Intn(4)*512))
				op.Repeat = r.IntRange(1, 9)
				bn.Children = append(bn.Children, op)
			}
			hn.Children = append(hn.Children, bn)
		}
		root.Children = append(root.Children, hn)
	}
	return root
}

// Property: the serialised string always parses back and is valid, and its
// number of non-structural tokens equals the number of leaves.
func TestFromTreeQuickInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		root := randomTree(r)
		s := FromTree(root)
		if err := s.Validate(); err != nil {
			return false
		}
		parsed, err := Parse(s.Format())
		if err != nil || !parsed.Equal(s) {
			return false
		}
		ops := 0
		for _, tok := range s {
			if !tok.IsStructural() {
				ops++
			}
		}
		return ops == root.CountLeaves()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: level bookkeeping. Starting at depth 0, each token after the
// first implies depth+1, and each [LEVEL_UP]:w token first pops w levels.
// The depth must stay within [0, 3] for a 4-level pattern tree and every
// [LEVEL_UP] weight must be in [1, 3].
func TestFromTreeQuickDepthBookkeeping(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := FromTree(randomTree(r))
		depth := 0
		for i, tok := range s {
			if tok.Literal == LitLevelUp {
				if tok.Weight < 1 || tok.Weight > 3 {
					return false
				}
				depth -= tok.Weight
				if depth < 0 {
					return false
				}
				continue
			}
			if i > 0 {
				depth++
			}
			if depth < 0 || depth > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: total string weight of the ops equals TotalOps of the tree.
func TestFromTreeQuickWeightConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		root := randomTree(r)
		s := FromTree(root)
		opWeight := 0
		for _, tok := range s {
			if !tok.IsStructural() {
				opWeight += tok.Weight
			}
		}
		return opWeight == root.TotalOps()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLiteralsOrder(t *testing.T) {
	s := String{{Literal: "x", Weight: 1}, {Literal: "y", Weight: 2}}
	lits := s.Literals()
	if strings.Join(lits, ",") != "x,y" {
		t.Fatalf("Literals = %v", lits)
	}
}
