package token

import "testing"

// FuzzParse checks the weighted-string parser never panics and that
// accepted inputs survive a format/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("[ROOT]:1 [HANDLE]:1 write[8]:3")
	f.Add("a:1")
	f.Add("x:999999999")
	f.Add("odd:literal:5")
	f.Add("  spaced \t tokens:2  ")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(input)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			// Parse may accept literals Validate rejects (e.g. colons in
			// the literal part); those are not required to round trip.
			return
		}
		again, err := Parse(s.Format())
		if err != nil {
			t.Fatalf("round trip failed: %v on %q", err, s.Format())
		}
		if !again.Equal(s) {
			t.Fatalf("round trip changed string: %q -> %q", s.Format(), again.Format())
		}
	})
}
