// Package token implements the weighted-string representation of §3.1 of
// Torres et al. (PaCT 2017): a pattern tree is flattened in pre-order into a
// sequence of weighted tokens.
//
// Token literals:
//
//	[ROOT], [HANDLE], [BLOCK]  interior nodes; weight always 1
//	name[bytes]                operation leaves; weight = repetition count
//	[LEVEL_UP]                 emitted when the pre-order traversal moves up
//	                           one or more levels before the next node;
//	                           weight = number of levels jumped
//
// There is no level-down token: descending one level between consecutive
// tokens is implicit ("the number of levels jumped from a parent to a child
// is always 1").
package token

import (
	"fmt"
	"strings"
)

// Reserved structural literals.
const (
	LitRoot    = "[ROOT]"
	LitHandle  = "[HANDLE]"
	LitBlock   = "[BLOCK]"
	LitLevelUp = "[LEVEL_UP]"
)

// Token is a weighted token: a literal and a positive weight.
type Token struct {
	Literal string
	Weight  int
}

// String renders the token in the canonical "literal:weight" text form.
func (t Token) String() string {
	return fmt.Sprintf("%s:%d", t.Literal, t.Weight)
}

// IsStructural reports whether the token is one of the reserved tree
// literals rather than an operation.
func (t Token) IsStructural() bool {
	switch t.Literal {
	case LitRoot, LitHandle, LitBlock, LitLevelUp:
		return true
	}
	return false
}

// OpLiteral builds the leaf literal for an operation name and byte count,
// e.g. "read[4096]" or "lseek+write[512]".
func OpLiteral(name string, bytes int64) string {
	return fmt.Sprintf("%s[%d]", name, bytes)
}

// String is a weighted string: a sequence of weighted tokens. (The paper:
// "a weighted string is a set of consecutive weighted tokens".)
type String []Token

// Weight returns the summation of the weights of all tokens (the paper's
// "weight of a string").
func (s String) Weight() int {
	total := 0
	for _, t := range s {
		total += t.Weight
	}
	return total
}

// WeightAtLeast returns the summation of the weights of the tokens whose
// weight is greater than or equal to n — the paper's weight_{w>=n} function
// used by the Eq. 12 normalisation.
func (s String) WeightAtLeast(n int) int {
	total := 0
	for _, t := range s {
		if t.Weight >= n {
			total += t.Weight
		}
	}
	return total
}

// Literals returns the token literals in order.
func (s String) Literals() []string {
	out := make([]string, len(s))
	for i, t := range s {
		out[i] = t.Literal
	}
	return out
}

// Format renders the string in the canonical text form: tokens separated by
// single spaces.
func (s String) Format() string {
	var b strings.Builder
	for i, t := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// Equal reports whether two weighted strings are identical token for token.
func (s String) Equal(o String) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the string.
func (s String) Clone() String {
	c := make(String, len(s))
	copy(c, s)
	return c
}

// Validate checks that every token has a non-empty literal and positive
// weight, and that literals contain no whitespace or ':' (which would break
// the text format).
func (s String) Validate() error {
	for i, t := range s {
		if t.Literal == "" {
			return fmt.Errorf("token %d: empty literal", i)
		}
		if t.Weight < 1 {
			return fmt.Errorf("token %d (%s): weight %d < 1", i, t.Literal, t.Weight)
		}
		if strings.ContainsAny(t.Literal, " \t\n:") {
			return fmt.Errorf("token %d: literal %q contains reserved characters", i, t.Literal)
		}
	}
	return nil
}

// Parse reads the canonical text form produced by Format: whitespace-
// separated "literal:weight" tokens.
func Parse(text string) (String, error) {
	fields := strings.Fields(text)
	s := make(String, 0, len(fields))
	for i, f := range fields {
		colon := strings.LastIndexByte(f, ':')
		if colon <= 0 || colon == len(f)-1 {
			return nil, fmt.Errorf("token %d: %q is not literal:weight", i, f)
		}
		var w int
		if _, err := fmt.Sscanf(f[colon+1:], "%d", &w); err != nil {
			return nil, fmt.Errorf("token %d: bad weight in %q: %v", i, f, err)
		}
		if w < 1 {
			return nil, fmt.Errorf("token %d: weight %d < 1 in %q", i, w, f)
		}
		s = append(s, Token{Literal: f[:colon], Weight: w})
	}
	return s, nil
}
