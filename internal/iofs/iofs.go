// Package iofs provides an in-memory POSIX-like file layer whose every
// call is recorded as an I/O trace operation. The paper's input data is
// exactly this kind of capture ("The I/O access pattern files are plain
// text files where each line corresponds to an operation"); iofs lets Go
// programs play the role of the instrumented application, so realistic
// workloads can be written as code and their access patterns fed to the
// pipeline.
//
//	fs := iofs.New()
//	f, _ := fs.Open("data.bin", iofs.ReadWrite)
//	f.Write(make([]byte, 4096))
//	f.Seek(0, iofs.SeekStart)
//	f.Read(make([]byte, 512))
//	f.Close()
//	tr := fs.Trace() // ready for core.Convert
package iofs

import (
	"fmt"
	"sort"

	"iokast/internal/trace"
)

// Mode selects how a file is opened.
type Mode int

// Open modes.
const (
	ReadOnly Mode = iota
	WriteOnly
	ReadWrite
	Append
)

// Whence values for Seek.
const (
	SeekStart = iota
	SeekCurrent
	SeekEnd
)

// FS is an in-memory recording filesystem. Not safe for concurrent use;
// the paper's traces are per-process chronological logs, and a recording
// filesystem shared across goroutines would interleave unrelated patterns.
type FS struct {
	files      map[string][]byte
	nextHandle int
	open       map[int]*File
	rec        trace.Trace
}

// New returns an empty recording filesystem. Handles start at 3, as they
// would in a process with stdio occupying 0-2.
func New() *FS {
	return &FS{
		files:      map[string][]byte{},
		nextHandle: 3,
		open:       map[int]*File{},
	}
}

// File is an open file handle.
type File struct {
	fs     *FS
	handle int
	path   string
	mode   Mode
	offset int64
	closed bool
}

// Open opens (creating, unless ReadOnly) the named file and records an
// "open" operation.
func (fs *FS) Open(path string, mode Mode) (*File, error) {
	if _, ok := fs.files[path]; !ok {
		if mode == ReadOnly {
			return nil, fmt.Errorf("iofs: open %s: no such file", path)
		}
		fs.files[path] = nil
	}
	f := &File{fs: fs, handle: fs.nextHandle, path: path, mode: mode}
	fs.nextHandle++
	if mode == Append {
		f.offset = int64(len(fs.files[path]))
	}
	fs.open[f.handle] = f
	fs.record(trace.Op{Name: "open", Handle: f.handle, Path: path})
	return f, nil
}

func (fs *FS) record(op trace.Op) { fs.rec.Ops = append(fs.rec.Ops, op) }

// Handle returns the numeric file handle.
func (f *File) Handle() int { return f.handle }

// Offset returns the current file position.
func (f *File) Offset() int64 { return f.offset }

// Read reads up to len(p) bytes from the current offset and records a
// "read" operation with the byte count actually read.
func (f *File) Read(p []byte) (int, error) {
	if err := f.usable(); err != nil {
		return 0, err
	}
	if f.mode == WriteOnly || f.mode == Append {
		return 0, fmt.Errorf("iofs: read %s: file is write-only", f.path)
	}
	data := f.fs.files[f.path]
	if f.offset >= int64(len(data)) {
		f.fs.record(trace.Op{Name: "read", Handle: f.handle, Bytes: 0})
		return 0, nil // EOF by zero count, as POSIX read(2)
	}
	n := copy(p, data[f.offset:])
	f.offset += int64(n)
	f.fs.record(trace.Op{Name: "read", Handle: f.handle, Bytes: int64(n)})
	return n, nil
}

// Write writes p at the current offset (extending the file as needed) and
// records a "write" operation.
func (f *File) Write(p []byte) (int, error) {
	if err := f.usable(); err != nil {
		return 0, err
	}
	if f.mode == ReadOnly {
		return 0, fmt.Errorf("iofs: write %s: file is read-only", f.path)
	}
	data := f.fs.files[f.path]
	end := f.offset + int64(len(p))
	if int64(len(data)) < end {
		grown := make([]byte, end)
		copy(grown, data)
		data = grown
	}
	copy(data[f.offset:end], p)
	f.fs.files[f.path] = data
	f.offset = end
	f.fs.record(trace.Op{Name: "write", Handle: f.handle, Bytes: int64(len(p))})
	return len(p), nil
}

// Seek moves the file position and records an "lseek" operation (with no
// byte count, matching the traces the paper compresses via rule 4).
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if err := f.usable(); err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case SeekStart:
		base = 0
	case SeekCurrent:
		base = f.offset
	case SeekEnd:
		base = int64(len(f.fs.files[f.path]))
	default:
		return 0, fmt.Errorf("iofs: seek %s: bad whence %d", f.path, whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("iofs: seek %s: negative position", f.path)
	}
	f.offset = pos
	f.fs.record(trace.Op{Name: "lseek", Handle: f.handle})
	return pos, nil
}

// Sync records an "fsync" operation (a no-op for the in-memory store).
func (f *File) Sync() error {
	if err := f.usable(); err != nil {
		return err
	}
	f.fs.record(trace.Op{Name: "fsync", Handle: f.handle})
	return nil
}

// Close records a "close" operation and invalidates the handle.
func (f *File) Close() error {
	if err := f.usable(); err != nil {
		return err
	}
	f.closed = true
	delete(f.fs.open, f.handle)
	f.fs.record(trace.Op{Name: "close", Handle: f.handle})
	return nil
}

func (f *File) usable() error {
	if f.closed {
		return fmt.Errorf("iofs: %s: use of closed file", f.path)
	}
	return nil
}

// Size returns the current size of the named file.
func (fs *FS) Size(path string) (int64, error) {
	data, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("iofs: stat %s: no such file", path)
	}
	return int64(len(data)), nil
}

// Paths lists the files created so far, sorted.
func (fs *FS) Paths() []string {
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// OpenHandles returns the handles still open (useful to assert a workload
// cleaned up after itself before converting its trace).
func (fs *FS) OpenHandles() []int {
	out := make([]int, 0, len(fs.open))
	for h := range fs.open {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// Trace returns a copy of the recorded access pattern.
func (fs *FS) Trace() *trace.Trace {
	c := fs.rec.Clone()
	return c
}

// SetName sets the recorded trace's name and label metadata.
func (fs *FS) SetName(name, label string) {
	fs.rec.Name = name
	fs.rec.Label = label
}

// Reset clears the recording (file contents are kept), so one filesystem
// can capture several phases separately.
func (fs *FS) Reset() {
	fs.rec.Ops = nil
}
