package iofs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"iokast/internal/core"
)

func TestOpenReadWriteClose(t *testing.T) {
	fs := New()
	f, err := fs.Open("a.bin", ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if f.Handle() < 3 {
		t.Fatalf("handle %d, want >= 3", f.Handle())
	}
	if n, err := f.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if _, err := f.Seek(0, SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if n, err := f.Read(buf); err != nil || n != 5 || !bytes.Equal(buf, []byte("hello")) {
		t.Fatalf("Read = %d %q %v", n, buf, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tr := fs.Trace()
	want := []string{"open", "write", "lseek", "read", "close"}
	if len(tr.Ops) != len(want) {
		t.Fatalf("ops %v", tr.Ops)
	}
	for i, w := range want {
		if tr.Ops[i].Name != w {
			t.Fatalf("op %d = %s, want %s", i, tr.Ops[i].Name, w)
		}
	}
	if tr.Ops[1].Bytes != 5 || tr.Ops[3].Bytes != 5 {
		t.Fatal("byte counts wrong")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingReadOnly(t *testing.T) {
	fs := New()
	if _, err := fs.Open("nope", ReadOnly); err == nil {
		t.Fatal("missing file opened read-only")
	}
}

func TestModeEnforcement(t *testing.T) {
	fs := New()
	w, _ := fs.Open("x", WriteOnly)
	if _, err := w.Read(make([]byte, 1)); err == nil {
		t.Fatal("read from write-only handle")
	}
	w.Write([]byte("abc"))
	w.Close()
	r, err := fs.Open("x", ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Write([]byte("no")); err == nil {
		t.Fatal("write to read-only handle")
	}
	r.Close()
}

func TestAppendMode(t *testing.T) {
	fs := New()
	f, _ := fs.Open("log", WriteOnly)
	f.Write([]byte("1234"))
	f.Close()
	a, err := fs.Open("log", Append)
	if err != nil {
		t.Fatal(err)
	}
	if a.Offset() != 4 {
		t.Fatalf("append offset %d", a.Offset())
	}
	a.Write([]byte("56"))
	a.Close()
	if size, _ := fs.Size("log"); size != 6 {
		t.Fatalf("size %d", size)
	}
}

func TestReadAtEOF(t *testing.T) {
	fs := New()
	f, _ := fs.Open("e", ReadWrite)
	n, err := f.Read(make([]byte, 8))
	if err != nil || n != 0 {
		t.Fatalf("EOF read = %d, %v", n, err)
	}
	f.Close()
}

func TestSeekVariants(t *testing.T) {
	fs := New()
	f, _ := fs.Open("s", ReadWrite)
	f.Write(make([]byte, 100))
	if pos, _ := f.Seek(10, SeekStart); pos != 10 {
		t.Fatalf("SeekStart %d", pos)
	}
	if pos, _ := f.Seek(5, SeekCurrent); pos != 15 {
		t.Fatalf("SeekCurrent %d", pos)
	}
	if pos, _ := f.Seek(-20, SeekEnd); pos != 80 {
		t.Fatalf("SeekEnd %d", pos)
	}
	if _, err := f.Seek(-1, SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
	f.Close()
}

func TestSparseWriteAfterSeek(t *testing.T) {
	fs := New()
	f, _ := fs.Open("sparse", WriteOnly)
	f.Seek(10, SeekStart)
	f.Write([]byte("x"))
	f.Close()
	if size, _ := fs.Size("sparse"); size != 11 {
		t.Fatalf("size %d, want 11", size)
	}
}

func TestUseAfterClose(t *testing.T) {
	fs := New()
	f, _ := fs.Open("c", ReadWrite)
	f.Close()
	if _, err := f.Read(make([]byte, 1)); err == nil {
		t.Fatal("read after close")
	}
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write after close")
	}
	if err := f.Close(); err == nil {
		t.Fatal("double close")
	}
	if err := f.Sync(); err == nil {
		t.Fatal("sync after close")
	}
}

func TestOpenHandlesTracking(t *testing.T) {
	fs := New()
	a, _ := fs.Open("a", ReadWrite)
	b, _ := fs.Open("b", ReadWrite)
	if got := fs.OpenHandles(); len(got) != 2 {
		t.Fatalf("open handles %v", got)
	}
	a.Close()
	if got := fs.OpenHandles(); len(got) != 1 || got[0] != b.Handle() {
		t.Fatalf("open handles %v", got)
	}
	b.Close()
}

func TestPathsSorted(t *testing.T) {
	fs := New()
	for _, p := range []string{"b", "a", "c"} {
		f, _ := fs.Open(p, WriteOnly)
		f.Close()
	}
	got := fs.Paths()
	if strings.Join(got, ",") != "a,b,c" {
		t.Fatalf("paths %v", got)
	}
}

func TestSetNameAndReset(t *testing.T) {
	fs := New()
	fs.SetName("run1", "A")
	f, _ := fs.Open("x", WriteOnly)
	f.Write([]byte("1"))
	f.Close()
	tr := fs.Trace()
	if tr.Name != "run1" || tr.Label != "A" || tr.Len() != 3 {
		t.Fatalf("trace %+v", tr)
	}
	fs.Reset()
	if fs.Trace().Len() != 0 {
		t.Fatal("reset did not clear ops")
	}
	// Contents survive the reset.
	if _, err := fs.Open("x", ReadOnly); err != nil {
		t.Fatal("file lost on reset")
	}
}

func TestTraceIsCopy(t *testing.T) {
	fs := New()
	f, _ := fs.Open("x", WriteOnly)
	tr := fs.Trace()
	f.Write([]byte("1"))
	if tr.Len() != 1 {
		t.Fatal("Trace returned a live view")
	}
	f.Close()
}

// TestCapturedWorkloadThroughPipeline is the integration the package
// exists for: run a small checkpoint-style workload, capture its trace,
// and push it through the paper's conversion.
func TestCapturedWorkloadThroughPipeline(t *testing.T) {
	fs := New()
	fs.SetName("capture-demo", "A")
	for file := 0; file < 2; file++ {
		f, err := fs.Open(fmt.Sprintf("chk%04d", file), WriteOnly)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			f.Write(make([]byte, 96))
		}
		for i := 0; i < 50; i++ {
			f.Write(make([]byte, 32768))
		}
		f.Close()
	}
	tr := fs.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := core.Convert(tr, core.Options{})
	text := s.Format()
	if !strings.Contains(text, "write[96]:3") || !strings.Contains(text, "write[32768]:50") {
		t.Fatalf("captured pattern did not compress as expected: %q", text)
	}
}

func TestSize(t *testing.T) {
	fs := New()
	if _, err := fs.Size("missing"); err == nil {
		t.Fatal("missing file stat accepted")
	}
}
