package iokast

import (
	"testing"
)

func TestRecordingFSFacade(t *testing.T) {
	fs := NewRecordingFS()
	f, err := fs.Open("x.dat", 2) // ReadWrite
	if err != nil {
		t.Fatal(err)
	}
	f.Write(make([]byte, 128))
	f.Close()
	tr := fs.Trace()
	if tr.Len() != 3 {
		t.Fatalf("recorded %d ops", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStatsFacade(t *testing.T) {
	tr, _ := ParseTraceString(demoTrace)
	s := ComputeStats(tr)
	if s.Ops != 5 || s.Writes != 2 || s.Reads != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestClassifyTracesFacade(t *testing.T) {
	writer, _ := ParseTraceString("open fh=1\nwrite fh=1 bytes=64\nwrite fh=1 bytes=64\nclose fh=1")
	seeker, _ := ParseTraceString("open fh=1\nlseek fh=1\nread fh=1 bytes=64\nlseek fh=1\nread fh=1 bytes=64\nclose fh=1")
	query, _ := ParseTraceString("open fh=1\nwrite fh=1 bytes=64\nwrite fh=1 bytes=64\nwrite fh=1 bytes=64\nclose fh=1")
	label, matches, err := ClassifyTraces(
		[]*Trace{writer, seeker}, []string{"writer", "seeker"},
		query, 2, 1, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if label != "writer" || len(matches) != 2 {
		t.Fatalf("label %q matches %v", label, matches)
	}
}

func TestFitKPCAFacade(t *testing.T) {
	ds, err := GeneratePaperDataset(9)
	if err != nil {
		t.Fatal(err)
	}
	var train []WeightedString
	for i := 0; i < 20; i++ {
		train = append(train, Convert(ds.Traces[i*5], ConvertOptions{}))
	}
	model, err := FitKPCA(NewKast(2), train, 2)
	if err != nil {
		t.Fatal(err)
	}
	coords, err := model.Project(Convert(ds.Traces[1], ConvertOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(coords) != 2 {
		t.Fatalf("projected coords %v", coords)
	}
}

func TestSilhouetteAndCopheneticFacade(t *testing.T) {
	a, _ := ParseTraceString("open fh=1\nwrite fh=1 bytes=8\nwrite fh=1 bytes=8\nclose fh=1")
	b, _ := ParseTraceString("open fh=1\nwrite fh=1 bytes=8\nwrite fh=1 bytes=8\nwrite fh=1 bytes=8\nclose fh=1")
	c, _ := ParseTraceString("open fh=1\nlseek fh=1\nread fh=1 bytes=4096\nlseek fh=1\nread fh=1 bytes=4096\nclose fh=1")
	d, _ := ParseTraceString("open fh=1\nlseek fh=1\nread fh=1 bytes=4096\nclose fh=1")
	xs := ConvertAll([]*Trace{a, b, c, d}, ConvertOptions{})
	sim, _, err := CosineSimilarity(NewKast(2), xs)
	if err != nil {
		t.Fatal(err)
	}
	dist := KernelDistance(sim)
	s, err := Silhouette(dist, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("silhouette %v for a sensible split", s)
	}
	dg, err := HCluster(sim, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := CopheneticCorrelation(dist, dg)
	if err != nil {
		t.Fatal(err)
	}
	if cc <= 0 {
		t.Fatalf("cophenetic correlation %v", cc)
	}
}

func TestSubsequenceKernelExported(t *testing.T) {
	tr, _ := ParseTraceString(demoTrace)
	s := Convert(tr, ConvertOptions{})
	k := &SubsequenceKernel{P: 2, Lambda: 0.5}
	if k.Compare(s, s) <= 0 {
		t.Fatal("subsequence self-similarity not positive")
	}
}
