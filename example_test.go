package iokast_test

import (
	"fmt"

	"iokast"
)

// ExampleConvert shows the §3.1 pipeline: a raw trace becomes a weighted
// token string with runs compressed into repetition weights.
func ExampleConvert() {
	tr, err := iokast.ParseTraceString(`
open fh=1
write fh=1 bytes=4096
write fh=1 bytes=4096
write fh=1 bytes=4096
close fh=1`)
	if err != nil {
		panic(err)
	}
	s := iokast.Convert(tr, iokast.ConvertOptions{})
	fmt.Println(s.Format())
	// Output: [ROOT]:1 [HANDLE]:1 [BLOCK]:1 write[4096]:3
}

// ExampleNewKast compares two access patterns with the Kast Spectrum
// Kernel.
func ExampleNewKast() {
	a, _ := iokast.ParseTraceString("open fh=1\nwrite fh=1 bytes=64\nwrite fh=1 bytes=64\nclose fh=1")
	b, _ := iokast.ParseTraceString("open fh=1\nwrite fh=1 bytes=64\nwrite fh=1 bytes=64\nwrite fh=1 bytes=64\nclose fh=1")
	sa := iokast.Convert(a, iokast.ConvertOptions{})
	sb := iokast.Convert(b, iokast.ConvertOptions{})
	k := iokast.NewKast(2)
	fmt.Printf("raw k(a,b) = %.0f\n", k.Compare(sa, sb))
	fmt.Printf("cosine     = %.2f\n", iokast.CosineNormalized(k).Compare(sa, sb))
	// Output:
	// raw k(a,b) = 30
	// cosine     = 1.00
}

// ExampleClassifyTraces labels an unknown pattern against references.
func ExampleClassifyTraces() {
	writer, _ := iokast.ParseTraceString("open fh=1\nwrite fh=1 bytes=64\nwrite fh=1 bytes=64\nclose fh=1")
	seeker, _ := iokast.ParseTraceString("open fh=1\nlseek fh=1\nread fh=1 bytes=64\nlseek fh=1\nread fh=1 bytes=64\nclose fh=1")
	query, _ := iokast.ParseTraceString("open fh=1\nlseek fh=1\nread fh=1 bytes=64\nlseek fh=1\nread fh=1 bytes=64\nlseek fh=1\nread fh=1 bytes=64\nclose fh=1")
	label, _, err := iokast.ClassifyTraces(
		[]*iokast.Trace{writer, seeker}, []string{"writer", "seeker"},
		query, 2, 1, iokast.ConvertOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(label)
	// Output: seeker
}

// ExampleNewRecordingFS captures a live workload as a trace.
func ExampleNewRecordingFS() {
	fs := iokast.NewRecordingFS()
	f, _ := fs.Open("out.bin", 1) // WriteOnly
	f.Write(make([]byte, 1024))
	f.Write(make([]byte, 1024))
	f.Close()
	s := iokast.Convert(fs.Trace(), iokast.ConvertOptions{})
	fmt.Println(s.Format())
	// Output: [ROOT]:1 [HANDLE]:1 [BLOCK]:1 write[1024]:2
}
