package iokast

import (
	"math"
	"strings"
	"testing"
)

const demoTrace = `
open fh=1
write fh=1 bytes=8
write fh=1 bytes=8
read fh=1 bytes=4096
close fh=1
`

func TestParseConvertRoundTrip(t *testing.T) {
	tr, err := ParseTraceString(demoTrace)
	if err != nil {
		t.Fatal(err)
	}
	s := Convert(tr, ConvertOptions{})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseWeightedString(s.Format())
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(s) {
		t.Fatal("weighted string round trip failed")
	}
}

func TestFormatTrace(t *testing.T) {
	tr, _ := ParseTraceString(demoTrace)
	var sb strings.Builder
	if err := FormatTrace(&sb, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "write fh=1 bytes=8") {
		t.Fatalf("formatted trace wrong:\n%s", sb.String())
	}
}

func TestParseStraceFacade(t *testing.T) {
	tr, err := ParseStrace(strings.NewReader(`read(3, "", 64) = 64`))
	if err != nil || tr.Len() != 1 {
		t.Fatalf("strace facade: %v %v", tr, err)
	}
}

func TestKernelFacades(t *testing.T) {
	tr, _ := ParseTraceString(demoTrace)
	s := Convert(tr, ConvertOptions{})
	k := NewKast(2)
	if got := CosineNormalized(k).Compare(s, s); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cosine self = %v", got)
	}
	if got := PaperNormalized(k).Compare(s, s); got <= 0 {
		t.Fatalf("paper self = %v", got)
	}
}

func TestEndToEndPipeline(t *testing.T) {
	ds, err := GeneratePaperDataset(42)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 110 {
		t.Fatalf("dataset %d", ds.Len())
	}
	// Subsample for speed: first 3 of each category block.
	var xs []WeightedString
	var labels []string
	for i := 0; i < ds.Len(); i += 10 {
		xs = append(xs, Convert(ds.Traces[i], ConvertOptions{}))
		labels = append(labels, ds.Labels[i])
	}
	sim, clipped, err := PaperSimilarity(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if clipped < 0 || sim.Rows != len(xs) {
		t.Fatalf("similarity shape %d clipped %d", sim.Rows, clipped)
	}
	res, err := KernelPCA(sim, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coords.Rows != len(xs) || res.Coords.Cols != 2 {
		t.Fatal("KPCA shape wrong")
	}
	dg, err := HCluster(sim, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	assign := dg.Cut(3)
	p, err := Purity(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.8 {
		t.Fatalf("purity %v suspiciously low", p)
	}
	if _, err := AdjustedRandIndex(assign, labels); err != nil {
		t.Fatal(err)
	}
}

func TestCosineSimilarityFacade(t *testing.T) {
	a, _ := ParseTraceString(demoTrace)
	xs := []WeightedString{Convert(a, ConvertOptions{}), Convert(a, ConvertOptions{IgnoreBytes: true})}
	sim, _, err := CosineSimilarity(&BlendedKernel{P: 3}, xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim.At(0, 0)-1) > 1e-9 {
		t.Fatalf("diag %v", sim.At(0, 0))
	}
}

func TestGenerateTrace(t *testing.T) {
	for _, cat := range []string{"A", "B", "C", "D"} {
		tr, err := GenerateTrace(cat, 7)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Label != cat || tr.Len() == 0 {
			t.Fatalf("category %s: %+v", cat, tr.Label)
		}
	}
	if _, err := GenerateTrace("Z", 1); err == nil {
		t.Fatal("unknown category accepted")
	}
}

func TestGramFacade(t *testing.T) {
	tr, _ := ParseTraceString(demoTrace)
	s := Convert(tr, ConvertOptions{})
	g := Gram(NewKast(2), []WeightedString{s, s})
	if g.Rows != 2 || g.At(0, 1) != g.At(1, 0) {
		t.Fatal("gram facade wrong")
	}
}

func TestEngineFacade(t *testing.T) {
	ds, err := GeneratePaperDataset(3)
	if err != nil {
		t.Fatal(err)
	}
	xs := ConvertAll(ds.Traces[:10], ConvertOptions{})

	e := NewEngine(EngineOptions{Kernel: NewKast(2)})
	for _, x := range xs {
		e.Add(x)
	}

	// The incrementally built normalized matrix must match the batch
	// PaperSimilarity pipeline over the same strings.
	got, _, gotClipped, err := e.NormalizedGram()
	if err != nil {
		t.Fatal(err)
	}
	want, wantClipped, err := PaperSimilarity(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Fatalf("engine normalized gram differs from PaperSimilarity by %g", d)
	}
	if gotClipped != wantClipped {
		t.Fatalf("clipped: engine %d, batch %d", gotClipped, wantClipped)
	}

	var ns []Neighbor
	if ns, err = e.Similar(0, 3); err != nil || len(ns) != 3 {
		t.Fatalf("Similar: %v, %v", ns, err)
	}
}

func TestOpenEngineFacade(t *testing.T) {
	ds, err := GeneratePaperDataset(5)
	if err != nil {
		t.Fatal(err)
	}
	xs := ConvertAll(ds.Traces[:8], ConvertOptions{})
	dir := t.TempDir()

	e, st, err := OpenEngine(dir, EngineOptions{Kernel: NewKast(2)}, StoreOptions{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddBatch(xs[:5]); err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[5:] {
		e.Add(x)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the recovered engine must serve the identical Gram matrix.
	e2, st2, err := OpenEngine(dir, EngineOptions{Kernel: NewKast(2)}, StoreOptions{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	g1, _ := e.Gram()
	g2, ids := e2.Gram()
	if len(ids) != len(xs) {
		t.Fatalf("recovered %d ids, want %d", len(ids), len(xs))
	}
	if d := g1.MaxAbsDiff(g2); d != 0 {
		t.Fatalf("recovered Gram differs by %g", d)
	}
	var stats StoreStats = st2.Stats()
	if stats.Seq != uint64(len(xs)) {
		t.Fatalf("recovered seq %d, want %d", stats.Seq, len(xs))
	}
}
